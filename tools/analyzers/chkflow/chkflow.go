// Package chkflow proves the checksum-maintenance half of the paper's
// invariant (§IV-B): every kernel launch that mutates protected tiles
// — POTF2 on a diagonal block, TRSM on a panel, the rank-k trailing
// updates (GEMM/SYRK) — must be paired with the corresponding
// checksum.Update* call before control reaches the next verification
// point, or the relation chk(A) = V·A the verification compares
// against is broken by the *algorithm* rather than by a fault, and
// every subsequent verification either false-alarms or mis-corrects.
// verifyread proves verification happens at the right time; chkflow
// proves the checksums being verified are actually maintained.
//
// The analyzer classifies mutations interprocedurally: a kernel launch
// is matched by its hetsim.Class (ClassPOTF2, ClassTRSM,
// ClassGEMM/ClassSYRK) and by the internal/blas entry points its body
// closure runs on the real plane (Dpotf2/Dpotrf, Dtrsm*,
// Dgemm*/Dsyrk*); checksum.UpdatePOTF2/UpdateTRSM/UpdateRankK calls
// establish the matching update facts. Facts propagate bottom-up
// through the package call graph (analysis.Summarize), so a driver
// statement `e.trsm(j)` carries the TRSM-mutation fact and
// `e.updTRSM(j)` the TRSM-update fact. On each driver declared with an
// `// abft:protocol driver` annotation, specialized to every scheme
// declared fault tolerant, chkflow then requires:
//
//   - no path from a mutation to a verification point (a verifyBlocks
//     call, or the function exit) avoids the matching checksum update
//     (error-abort returns are exempt: a failed step never reaches
//     verification), and
//   - every checksum-update statement is dominated by a matching
//     mutation — updating checksums for data that was not rewritten
//     diverges chk(A) from A just as surely.
//
// Driver statements take May-credit for their callees' facts: the step
// and update helpers guard the same degenerate iterations (k == 0,
// m == 0) with matching early returns, so a conditional update inside
// a helper pairs with the equally-conditional mutation. The dynamic
// property test in internal/checksum covers the arithmetic the static
// proof takes on faith. Zero-trip loop edges stay in the graph — an
// update issued only inside a loop that may run zero times does not
// cover a mutation before it (the goleak discipline).
//
// Two local well-formedness checks ride along: a launch whose declared
// Class disagrees with the BLAS kind its body performs (the cost model
// and fault campaign would charge the wrong kernel), and
// checksum.Update* call sites whose block/view extents or matrix
// derivations mismatch the update's contract via the mat accessor API
// (e.g. passing a data view where a checksum view belongs).
//
// Protocol-annotation hygiene (malformed directives, missing scheme
// declarations) is reported by verifyread, which owns the annotation
// convention; chkflow only consumes the parsed tables.
package chkflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"abftchol/tools/analyzers/analysis"
)

// Doc explains the analyzer; it is also the driver help text.
const Doc = "prove every protected-tile mutation pairs with its checksum update before the next verification point"

const (
	corePath     = "abftchol/internal/core"
	hetsimPath   = "abftchol/internal/hetsim"
	blasPath     = "abftchol/internal/blas"
	checksumPath = "abftchol/internal/checksum"
)

// verifierName is the method whose call is a verification point.
const verifierName = "verifyBlocks"

// Fact bits: three mutation kinds, their matching updates, and the
// verification points.
const (
	mutRankK analysis.Facts = 1 << iota
	mutTRSM
	mutPOTF2
	updRankK
	updTRSM
	updPOTF2
	factVerify
)

// mutKind pairs one mutation kind with its checksum update.
type mutKind struct {
	name   string // human name of the mutation
	update string // checksum.<update> that maintains it
	mut    analysis.Facts
	upd    analysis.Facts
}

var mutKinds = []mutKind{
	{name: "rank-k trailing update", update: "UpdateRankK", mut: mutRankK, upd: updRankK},
	{name: "TRSM panel solve", update: "UpdateTRSM", mut: mutTRSM, upd: updTRSM},
	{name: "POTF2 factorization", update: "UpdatePOTF2", mut: mutPOTF2, upd: updPOTF2},
}

// classFacts maps hetsim kernel classes to mutation facts; checksum
// bookkeeping classes map to nothing.
var classFacts = map[string]analysis.Facts{
	"ClassGEMM": mutRankK, "ClassSYRK": mutRankK,
	"ClassTRSM": mutTRSM, "ClassPOTF2": mutPOTF2,
}

// blasFacts maps real-plane BLAS entry points to the mutation they
// perform on the tile they write.
var blasFacts = map[string]analysis.Facts{
	"Dgemm": mutRankK, "DgemmParallel": mutRankK,
	"Dsyrk": mutRankK, "DsyrkParallel": mutRankK,
	"Dtrsm": mutTRSM, "DtrsmParallel": mutTRSM,
	"Dpotf2": mutPOTF2, "Dpotrf": mutPOTF2,
}

// updateFacts maps checksum maintenance entry points to update facts.
var updateFacts = map[string]analysis.Facts{
	"UpdateRankK": updRankK, "UpdateTRSM": updTRSM, "UpdatePOTF2": updPOTF2,
}

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name:      "chkflow",
	Doc:       Doc,
	Scope:     "internal/core",
	AppliesTo: analysis.PathIn(corePath),
	Run:       run,
}

func run(pass *analysis.Pass) error {
	files := nonTestFiles(pass)
	if len(files) == 0 {
		return nil
	}
	protocol := analysis.ParseProtocol(files)
	info := pass.TypesInfo
	cg := analysis.BuildCallGraph(pass)
	classifier := classify(info)
	sums := cg.Summarize(info, classifier)
	fields := inferFields(info, files)

	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			du := analysis.CollectDefUse(fd, info)
			checkLaunchBodies(pass, fd, du)
			checkUpdateSites(pass, cg, fd, fields)
			if _, ok := protocol.Driver(fd.Name.Name); ok {
				checkDriver(pass, protocol, fd, du, sums, classifier)
			}
		}
	}
	return nil
}

// nonTestFiles drops _test.go files: test helpers exercise steps and
// updates in isolation by design, outside any protocol.
func nonTestFiles(pass *analysis.Pass) []*ast.File {
	var out []*ast.File
	for _, f := range pass.Files {
		if !strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}

// classify is the per-node fact classifier fed to the summary layer.
func classify(info *types.Info) func(ast.Node) analysis.Facts {
	return func(n ast.Node) analysis.Facts {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return 0
		}
		var f analysis.Facts
		if class, ok := launchClass(info, call); ok {
			f |= classFacts[class]
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == verifierName {
			f |= factVerify
		}
		if fn := analysis.CalleeOf(info, call); fn != nil && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case blasPath:
				f |= blasFacts[fn.Name()]
			case checksumPath:
				f |= updateFacts[fn.Name()]
			}
		}
		return f
	}
}

// launchClass matches Device.Launch(stream, Kernel{...}) calls and
// resolves the kernel's Class constant name. Unresolvable classes are
// left to injectortick, which already polices them.
func launchClass(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Launch" || len(call.Args) != 2 {
		return "", false
	}
	tv, ok := info.Types[sel.X]
	if !ok || !namedFrom(tv.Type, hetsimPath, "Device") {
		return "", false
	}
	lit, ok := call.Args[1].(*ast.CompositeLit)
	if !ok {
		return "", false
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Class" {
			continue
		}
		var id *ast.Ident
		switch v := kv.Value.(type) {
		case *ast.Ident:
			id = v
		case *ast.SelectorExpr:
			id = v.Sel
		default:
			return "", false
		}
		if c, ok := info.Uses[id].(*types.Const); ok && namedFrom(c.Type(), hetsimPath, "Class") {
			return c.Name(), true
		}
		return "", false
	}
	return "ClassGEMM", true // zero value
}

// namedFrom reports whether t is (a pointer to) the named type from
// the given package path.
func namedFrom(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// ---- driver protocol checking --------------------------------------

func checkDriver(pass *analysis.Pass, protocol *analysis.Protocol, fd *ast.FuncDecl, du *analysis.DefUse, sums map[*types.Func]*analysis.Summary, classifier func(ast.Node) analysis.Facts) {
	info := pass.TypesInfo
	g := analysis.BuildCFG(fd.Body)
	// May-credit: a driver statement's facts include everything its
	// callees can do (see the package comment for why May, not Must).
	nf := analysis.NodeFacts(g, info, sums, true, classifier)

	errReturn := map[*analysis.Node]bool{}
	for _, n := range g.Nodes {
		if n.Kind != analysis.NodeStmt {
			continue
		}
		if ret, ok := n.Stmt.(*ast.ReturnStmt); ok && returnsError(info, ret) {
			errReturn[n] = true
		}
	}

	// One finding per (site, kind, check) across schemes; the failing
	// schemes are listed together.
	type key struct {
		pos   token.Pos
		kind  int
		check int // 0 = unpaired mutation, 1 = update without mutation
	}
	failures := map[key][]string{}
	order := []key{}

	for _, sp := range protocol.FTSchemes() {
		rs := analysis.SchemeResolver(info, du, corePath, sp)
		live := g.Reachable(g.Entry, analysis.PathOpts{Resolve: rs})
		var dom []map[*analysis.Node]bool // built lazily per scheme
		for _, n := range g.Nodes {
			if !live[n] {
				continue
			}
			f := nf[n]
			for ki, k := range mutKinds {
				if f.Has(k.mut) && !f.Has(k.upd) && unpaired(g, n, nf, errReturn, rs, k) {
					kk := key{n.Pos(), ki, 0}
					if _, seen := failures[kk]; !seen {
						order = append(order, kk)
					}
					failures[kk] = append(failures[kk], sp.Name)
				}
				if f.Has(k.upd) && !f.Has(k.mut) {
					if dom == nil {
						dom = g.Dominators(analysis.PathOpts{Resolve: rs})
					}
					dominated := false
					for d := range dom[n.Index] {
						if d != n && nf[d].Has(k.mut) {
							dominated = true
							break
						}
					}
					if !dominated {
						kk := key{n.Pos(), ki, 1}
						if _, seen := failures[kk]; !seen {
							order = append(order, kk)
						}
						failures[kk] = append(failures[kk], sp.Name)
					}
				}
			}
		}
	}

	sort.Slice(order, func(i, j int) bool {
		if order[i].pos != order[j].pos {
			return order[i].pos < order[j].pos
		}
		if order[i].kind != order[j].kind {
			return order[i].kind < order[j].kind
		}
		return order[i].check < order[j].check
	})
	for _, kk := range order {
		k := mutKinds[kk.kind]
		schemes := strings.Join(failures[kk], ", ")
		switch kk.check {
		case 0:
			pass.Reportf(kk.pos, "%s can reach the next verification point without checksum.%s (schemes: %s); the checksum relation chk(A)=V*A is broken by the algorithm itself", k.name, k.update, schemes)
		case 1:
			pass.Reportf(kk.pos, "checksum.%s has no dominating %s on this path (schemes: %s); updating checksums for data that was not rewritten diverges chk(A) from A", k.update, k.name, schemes)
		}
	}
}

// unpaired reports whether, from mutation node n, a verification point
// (a live verifyBlocks statement or the function exit) is reachable
// without crossing a node carrying the matching update fact or an
// error-abort return.
func unpaired(g *analysis.CFG, n *analysis.Node, nf map[*analysis.Node]analysis.Facts, errReturn map[*analysis.Node]bool, rs func(ast.Expr) (bool, bool), k mutKind) bool {
	after := g.Reachable(n, analysis.PathOpts{
		Resolve: rs,
		Barrier: func(x *analysis.Node) bool { return nf[x].Has(k.upd) || errReturn[x] },
	})
	if after[g.Exit] {
		return true
	}
	for x := range after {
		// Barrier nodes appear in the reachable set; a verification
		// point only counts when traversal actually continued into it.
		if nf[x].Has(factVerify) && !nf[x].Has(k.upd) && !errReturn[x] {
			return true
		}
	}
	return false
}

// returnsError matches a return whose single result is a non-nil
// error expression — the fail-stop abort path.
func returnsError(info *types.Info, ret *ast.ReturnStmt) bool {
	if len(ret.Results) != 1 {
		return false
	}
	r := ret.Results[0]
	if id, ok := r.(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	tv, ok := info.Types[r]
	return ok && tv.Type != nil && tv.Type.String() == "error"
}

// ---- launch class vs body kind -------------------------------------

// checkLaunchBodies flags kernel launches whose declared Class
// disagrees with the BLAS work their real-plane body performs: the
// cost model, fault campaign, and this analyzer would all classify the
// kernel wrongly.
func checkLaunchBodies(pass *analysis.Pass, fd *ast.FuncDecl, du *analysis.DefUse) {
	info := pass.TypesInfo
	ast.Inspect(fd, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		class, ok := launchClass(info, call)
		if !ok {
			return true
		}
		lit := call.Args[1].(*ast.CompositeLit)
		body := resolveBody(info, du, lit)
		if body == nil {
			return true
		}
		var bodyMut analysis.Facts
		ast.Inspect(body, func(y ast.Node) bool {
			if c, ok := y.(*ast.CallExpr); ok {
				if fn := analysis.CalleeOf(info, c); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == blasPath {
					bodyMut |= blasFacts[fn.Name()]
				}
			}
			return true
		})
		if bodyMut == 0 {
			return true
		}
		if want, compute := classFacts[class]; compute {
			if !bodyMut.Has(want) {
				pass.Reportf(call.Pos(), "kernel launched as %s but its body performs %s; the cost model and fault campaign charge the wrong kernel", class, mutName(bodyMut))
			}
		} else {
			pass.Reportf(call.Pos(), "kernel launched as %s but its body performs %s; a checksum kernel must not mutate protected tiles", class, mutName(bodyMut))
		}
		return true
	})
}

// resolveBody resolves the Kernel literal's Body field to a function
// literal: either written inline or a single-definition local (`var
// body func(); if e.a != nil { body = func() {...} }`, the real-plane
// gating idiom). Unresolvable bodies are skipped.
func resolveBody(info *types.Info, du *analysis.DefUse, lit *ast.CompositeLit) *ast.FuncLit {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Body" {
			continue
		}
		switch v := kv.Value.(type) {
		case *ast.FuncLit:
			return v
		case *ast.Ident:
			obj := info.Uses[v]
			if obj == nil {
				return nil
			}
			if defs := du.Defs[obj]; len(defs) == 1 {
				if fl, ok := defs[0].(*ast.FuncLit); ok {
					return fl
				}
			}
		}
		return nil
	}
	return nil
}

func mutName(f analysis.Facts) string {
	var names []string
	for _, k := range mutKinds {
		if f.Has(k.mut) {
			names = append(names, k.name)
		}
	}
	return strings.Join(names, " and ")
}

// ---- update call-site extent checking ------------------------------

// matFields is the inferred field layout of the executor struct: which
// field holds the checksum matrix and which the data matrix.
type matFields struct {
	chk, data string
	known     bool
}

// inferFields finds the encode assignment `recv.<chk> =
// checksum.EncodeMatrix*(recv.<data>, ...)` and reads the two field
// names from it; everything downstream derives views from these.
func inferFields(info *types.Info, files []*ast.File) matFields {
	var out matFields
	for _, f := range files {
		ast.Inspect(f, func(x ast.Node) bool {
			if out.known {
				return false
			}
			as, ok := x.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			lhs, ok := as.Lhs[0].(*ast.SelectorExpr)
			if !ok {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := analysis.CalleeOf(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != checksumPath || !strings.HasPrefix(fn.Name(), "EncodeMatrix") {
				return true
			}
			arg, ok := call.Args[0].(*ast.SelectorExpr)
			if !ok {
				return true
			}
			out = matFields{chk: lhs.Sel.Name, data: arg.Sel.Name, known: true}
			return false
		})
	}
	return out
}

// viewInfo describes what one checksum.Update* argument was resolved
// to: the executor field it derives from and its row/column extents in
// normalized textual form ("" when not statically resolvable).
type viewInfo struct {
	field      string
	rows, cols string
}

// updateContract describes one checksum.Update* entry point: argument
// names, which positions must be checksum-derived, and the extent
// equalities its contract requires (pairs of argument/axis indices).
type updateContract struct {
	args []string
	chk  []bool // true: checksum-matrix position; false: data-matrix position
	// extent equalities: each entry is {argA, axisA, argB, axisB} with
	// axis 0 = rows, 1 = cols.
	eq [][4]int
}

var contracts = map[string]updateContract{
	"UpdateRankK": {
		args: []string{"chkOut", "chkSrc", "panel"},
		chk:  []bool{true, true, false},
		eq:   [][4]int{{0, 0, 1, 0}, {0, 1, 2, 0}, {1, 1, 2, 1}},
	},
	"UpdateTRSM": {
		args: []string{"chk", "l"},
		chk:  []bool{true, false},
		eq:   [][4]int{{0, 1, 1, 0}, {1, 0, 1, 1}},
	},
	"UpdatePOTF2": {
		args: []string{"chk", "la"},
		chk:  []bool{true, false},
		eq:   [][4]int{{0, 1, 1, 0}, {1, 0, 1, 1}},
	},
}

// checkUpdateSites verifies every checksum.Update* call in fd
// (closures included — that is where they live) against its contract:
// checksum-positions must not receive data-matrix views and vice
// versa, and the extents of the views must satisfy the update's shape
// relations. Arguments that cannot be resolved through the mat
// accessor API are skipped, not guessed.
func checkUpdateSites(pass *analysis.Pass, cg *analysis.CallGraph, fd *ast.FuncDecl, fields matFields) {
	info := pass.TypesInfo
	ast.Inspect(fd, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeOf(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != checksumPath {
			return true
		}
		c, ok := contracts[fn.Name()]
		if !ok || len(call.Args) != len(c.args) {
			return true
		}
		views := make([]*viewInfo, len(call.Args))
		for i, arg := range call.Args {
			views[i] = resolveView(info, cg, arg)
		}
		for i, v := range views {
			if v == nil || v.field == "" || !fields.known {
				continue
			}
			if c.chk[i] && v.field == fields.data {
				pass.Reportf(call.Args[i].Pos(), "checksum.%s %s argument derives from the data matrix (field %s); it must be a view of the checksum matrix (field %s)", fn.Name(), c.args[i], fields.data, fields.chk)
			}
			if !c.chk[i] && v.field == fields.chk {
				pass.Reportf(call.Args[i].Pos(), "checksum.%s %s argument derives from the checksum matrix (field %s); it must be a view of the data matrix (field %s)", fn.Name(), c.args[i], fields.chk, fields.data)
			}
		}
		axes := [2]string{"rows", "cols"}
		extent := func(i, axis int) string {
			if views[i] == nil {
				return ""
			}
			if axis == 0 {
				return views[i].rows
			}
			return views[i].cols
		}
		for _, eq := range c.eq {
			a, b := extent(eq[0], eq[1]), extent(eq[2], eq[3])
			if a == "" || b == "" || a == b {
				continue
			}
			pass.Reportf(call.Pos(), "checksum.%s extent mismatch: %s %s (%s) != %s %s (%s); the update would write outside the block's checksum columns", fn.Name(), c.args[eq[0]], axes[eq[1]], a, c.args[eq[2]], axes[eq[3]], b)
		}
		return true
	})
}

// resolveView resolves one matrix-valued argument through the mat
// accessor API: a direct field (`e.chk`), a view of a field
// (`e.chk.View(i, j, r, c)`), or a package-local helper whose body is
// a single `return recv.field.View(...)` (the block/chkView idiom).
// Returns nil when the expression is outside this vocabulary.
func resolveView(info *types.Info, cg *analysis.CallGraph, e ast.Expr) *viewInfo {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return &viewInfo{field: e.Sel.Name}
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		if sel.Sel.Name == "View" && len(e.Args) == 4 {
			src, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
			if !ok {
				return nil
			}
			v := &viewInfo{field: src.Sel.Name}
			v.rows, _ = renderExtent(e.Args[2], nil, true)
			v.cols, _ = renderExtent(e.Args[3], nil, true)
			return v
		}
		// Helper method: resolve its single-return View body.
		fn := analysis.CalleeOf(info, e)
		if fn == nil {
			return nil
		}
		decl := cg.Decl(fn)
		if decl == nil || decl.Body == nil || len(decl.Body.List) != 1 || decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
			return nil
		}
		ret, ok := decl.Body.List[0].(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return nil
		}
		view, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr)
		if !ok || len(view.Args) != 4 {
			return nil
		}
		vsel, ok := view.Fun.(*ast.SelectorExpr)
		if !ok || vsel.Sel.Name != "View" {
			return nil
		}
		src, ok := ast.Unparen(vsel.X).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		recvName := decl.Recv.List[0].Names[0].Name
		siteRecv, ok := renderExtent(sel.X, nil, true)
		if !ok {
			return nil
		}
		// Extents referencing helper locals or parameters cannot be
		// compared at the call site; substitution covers the receiver
		// only, and bare identifiers fail the render.
		subst := map[string]string{recvName: siteRecv}
		v := &viewInfo{field: src.Sel.Name}
		v.rows, _ = renderExtent(view.Args[2], subst, false)
		v.cols, _ = renderExtent(view.Args[3], subst, false)
		return v
	}
	return nil
}

// renderExtent renders an extent expression to a comparable canonical
// string: products are flattened and their factors sorted, so
// `e.m*m` and `m*e.m` compare equal. subst maps identifier names
// (the helper receiver) to replacement text; with allowBare false any
// other bare identifier fails the render (helper locals are
// meaningless at the call site).
func renderExtent(e ast.Expr, subst map[string]string, allowBare bool) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if s, ok := subst[e.Name]; ok {
			return s, true
		}
		if allowBare {
			return e.Name, true
		}
	case *ast.BasicLit:
		return e.Value, true
	case *ast.SelectorExpr:
		x, ok := renderExtent(e.X, subst, allowBare)
		if ok {
			return x + "." + e.Sel.Name, true
		}
	case *ast.BinaryExpr:
		if e.Op == token.MUL {
			var factors []string
			ok := flattenProduct(e, subst, allowBare, &factors)
			if ok {
				sort.Strings(factors)
				return strings.Join(factors, "*"), true
			}
			return "", false
		}
		x, xok := renderExtent(e.X, subst, allowBare)
		y, yok := renderExtent(e.Y, subst, allowBare)
		if xok && yok {
			return fmt.Sprintf("%s%s%s", x, e.Op, y), true
		}
	}
	return "", false
}

func flattenProduct(e ast.Expr, subst map[string]string, allowBare bool, out *[]string) bool {
	if b, ok := ast.Unparen(e).(*ast.BinaryExpr); ok && b.Op == token.MUL {
		return flattenProduct(b.X, subst, allowBare, out) && flattenProduct(b.Y, subst, allowBare, out)
	}
	s, ok := renderExtent(e, subst, allowBare)
	if !ok {
		return false
	}
	*out = append(*out, s)
	return true
}
