// Package chkflowtest exercises the chkflow analyzer against a
// miniature executor that mirrors internal/core's shape: blas-backed
// step kernels, checksum.Update* maintenance helpers, and annotated
// drivers, using the real Scheme constants.
package chkflowtest

import (
	"abftchol/internal/blas"
	"abftchol/internal/checksum"
	"abftchol/internal/core"
	"abftchol/internal/hetsim"
	"abftchol/internal/mat"
)

// The analyzer takes its protocol from annotations in the package
// under check; this miniature package declares two fault-tolerant
// disciplines so per-scheme findings deduplicate into one diagnostic.
//
// abft:protocol scheme SchemeOffline ft verify=final
// abft:protocol scheme SchemeOnline ft verify=post-write

type exec struct {
	sch      core.Scheme
	a, chk   *mat.Matrix
	b, m, nb int
	gpu      *hetsim.Device
	sc       *hetsim.Stream
}

func (e *exec) verifyBlocks(blocks [][2]int) error { return nil }

// encode is the field-inference anchor: chk holds checksums of a.
func (e *exec) encode() {
	e.chk = checksum.EncodeMatrixMulti(e.a, e.b, e.m)
}

func (e *exec) block(bi, bj int) *mat.Matrix {
	return e.a.View(bi*e.b, bj*e.b, e.b, e.b)
}

func (e *exec) chkView(bi, bj int) *mat.Matrix {
	return e.chk.View(e.m*bi, bj*e.b, e.m, e.b)
}

func (e *exec) potf2Step(j int) error {
	return blas.Dpotf2(e.b, e.a.Off(j*e.b, j*e.b), e.a.Stride)
}

func (e *exec) trsmStep(j int) {
	blas.DtrsmParallel(blas.Right, blas.Trans, e.b, e.b, 1,
		e.a.Off(j*e.b, j*e.b), e.a.Stride,
		e.a.Off((j+1)*e.b, j*e.b), e.a.Stride)
}

func (e *exec) updPOTF2Step(j int) {
	checksum.UpdatePOTF2(e.chkView(j, j), e.block(j, j))
}

func (e *exec) updTRSMStep(j int) {
	checksum.UpdateTRSM(e.chk.View(e.m*(j+1), j*e.b, e.m, e.b), e.block(j, j))
}

// runGood pairs every mutation with its update before the next
// verification point: no findings.
//
// abft:protocol driver steps=potf2,trsm
func (e *exec) runGood() error {
	sch := e.sch
	ft := sch.FaultTolerant()
	if ft {
		e.encode()
	}
	for j := 0; j < e.nb; j++ {
		if err := e.potf2Step(j); err != nil {
			return err
		}
		if ft {
			e.updPOTF2Step(j)
		}
		if sch == core.SchemeOnline {
			if err := e.verifyBlocks([][2]int{{j, j}}); err != nil {
				return err
			}
		}
		e.trsmStep(j)
		if ft {
			e.updTRSMStep(j)
		}
		if sch == core.SchemeOnline {
			if err := e.verifyBlocks(nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// runMissingTRSM forgets the TRSM checksum update, so the panel's
// checksums go stale before the post-write verification (or, under
// Offline, before the final one).
//
// abft:protocol driver steps=potf2,trsm
func (e *exec) runMissingTRSM() error {
	sch := e.sch
	ft := sch.FaultTolerant()
	if ft {
		e.encode()
	}
	for j := 0; j < e.nb; j++ {
		if err := e.potf2Step(j); err != nil {
			return err
		}
		if ft {
			e.updPOTF2Step(j)
		}
		e.trsmStep(j) // want "TRSM panel solve can reach the next verification point without checksum.UpdateTRSM"
		if sch == core.SchemeOnline {
			if err := e.verifyBlocks(nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// runZeroTrip issues the update only inside a loop that may run zero
// times; the zero-trip edge reaches the exit with stale checksums.
//
// abft:protocol driver steps=trsm
func (e *exec) runZeroTrip() error {
	ft := e.sch.FaultTolerant()
	if ft {
		e.encode()
	}
	e.trsmStep(0) // want "TRSM panel solve can reach the next verification point without checksum.UpdateTRSM"
	for k := 0; k < e.nb; k++ {
		if ft {
			e.updTRSMStep(k)
		}
	}
	return nil
}

// runUnmotivated updates checksums for a panel that may never have
// been rewritten, diverging chk(A) from A on the skip path.
//
// abft:protocol driver steps=trsm
func (e *exec) runUnmotivated() error {
	ft := e.sch.FaultTolerant()
	if ft {
		e.encode()
	}
	if e.nb > 1 {
		e.trsmStep(0)
	}
	if ft {
		e.updTRSMStep(0) // want "checksum.UpdateTRSM has no dominating TRSM panel solve"
	}
	return nil
}

// runSuppressed documents the sanctioned escape hatch: the finding is
// real but justified, so the driver must swallow it.
//
// abft:protocol driver steps=trsm
func (e *exec) runSuppressed() error {
	if e.sch.FaultTolerant() {
		e.encode()
	}
	e.trsmStep(0) //nolint:chkflow // fixture: exercises the suppression path end to end
	return nil
}

// runUnannotated has the same hole as runMissingTRSM but no driver
// annotation, so chkflow has no protocol to check it against.
func (e *exec) runUnannotated() error {
	e.trsmStep(0)
	return nil
}

// badUpdates mismatches the update contracts at the call site.
func (e *exec) badUpdates(k int) {
	checksum.UpdateRankK(e.chk.View(0, 0, e.m, e.b), e.chk.View(0, 0, e.m, k), e.a.View(0, 0, e.b, e.b)) // want "chkSrc cols \\(k\\) != panel cols"
	checksum.UpdateTRSM(e.a.View(0, 0, e.m, e.b), e.block(0, 0))                                         // want "chk argument derives from the data matrix"
}

// badClassLaunch declares a TRSM kernel whose body is a GEMM.
func (e *exec) badClassLaunch(j int) {
	var body func()
	if e.a != nil {
		body = func() {
			blas.DgemmParallel(blas.NoTrans, blas.Trans, e.b, e.b, e.b,
				-1, e.a.Off(j*e.b, 0), e.a.Stride,
				e.a.Off(j*e.b, 0), e.a.Stride,
				1, e.a.Off(j*e.b, j*e.b), e.a.Stride)
		}
	}
	e.gpu.Launch(e.sc, hetsim.Kernel{ // want "launched as ClassTRSM but its body performs rank-k trailing update"
		Name:  "bad-class",
		Class: hetsim.ClassTRSM,
		Flops: 1,
		Body:  body,
	})
}

// badChkLaunch hides a mutation inside a checksum-bookkeeping kernel.
func (e *exec) badChkLaunch() {
	e.gpu.Launch(e.sc, hetsim.Kernel{ // want "launched as ClassChkUpdate but its body performs TRSM panel solve"
		Name:  "bad-chk",
		Class: hetsim.ClassChkUpdate,
		Flops: 1,
		Body: func() {
			blas.DtrsmParallel(blas.Right, blas.Trans, e.b, e.b, 1,
				e.a.Off(0, 0), e.a.Stride,
				e.a.Off(e.b, 0), e.a.Stride)
		},
	})
}
