// Package detorder enforces deterministic output order in the
// packages that promise it: the simulator reporting layer
// (internal/hetsim), the observability layer (internal/obs), the sweep
// engine (internal/experiments), the job daemon (internal/server),
// the reliability campaign engine (internal/reliability, whose report
// bytes must survive kill-and-resume unchanged), and the CLI
// (cmd/abftchol). The
// differential test battery asserts byte-identical text/CSV/JSON at
// -parallel 1 and -parallel N, and the golden-output tests assert
// byte-identical runs across processes; Go map iteration order is
// randomized per run, so a `range` over a map flowing into any emit
// sink is a reproducibility bug that surfaces only occasionally —
// precisely the failure mode static checking beats testing on.
//
// Three checks per file:
//
//   - a range over a map must not feed an emit sink (fmt printing, an
//     encoder, a writer) inside the loop body, and must not append to
//     an accumulator declared outside the loop unless the function
//     sorts that accumulator; iterate sorted keys instead;
//   - the detsim clock/randomness rules (time.Now, global math/rand,
//     crypto/rand) apply here too, via detsim.CheckFile — this is the
//     half of detsim these packages used to carry;
//   - pointer formatting (%p) is banned: addresses differ per run, so
//     a %p in rendered output breaks byte-identity the same way map
//     order does.
//
// Accumulating into another map, summing into a scalar, and appends
// whose target is declared inside the loop body are all order-
// insensitive and allowed. _test.go files are exempt — tests may
// legitimately range maps into t.Logf.
package detorder

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"abftchol/tools/analyzers/analysis"
	"abftchol/tools/analyzers/detsim"
)

// Doc explains the analyzer; it is also the driver help text.
const Doc = "forbid map iteration order from reaching emitted output (range over map into a print/encode/append sink without a sort), wall-clock and unseeded randomness, and %p pointer formatting in the deterministic-output packages"

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name:  "detorder",
	Doc:   Doc,
	Scope: "internal/obs, internal/experiments, internal/hetsim, internal/server, internal/reliability, cmd/abftchol",
	AppliesTo: analysis.PathIn(
		"abftchol/internal/obs",
		"abftchol/internal/experiments",
		"abftchol/internal/hetsim",
		"abftchol/internal/server",
		"abftchol/internal/reliability",
		"abftchol/cmd/abftchol",
	),
	Run: run,
}

// emitMethods are method names that move bytes toward output; calling
// one inside a map-range body stamps iteration order into the stream.
var emitMethods = map[string]bool{
	"Encode": true, "Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Print": true, "Printf": true, "Println": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if name := pass.Fset.Position(f.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		detsim.CheckFile(pass, f)
		checkPointerFormat(pass, f)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd)
		}
	}
	return nil
}

// ---- map-range order -------------------------------------------------

func checkMapRanges(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, has := info.Types[rng.X]
		if !has || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkRangeBody(pass, fd, rng)
		return true
	})
}

// checkRangeBody scans one map-range body for order-sensitive sinks.
func checkRangeBody(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isEmitCall(info, n) {
				pass.Reportf(n.Pos(), "emit inside a range over a map: iteration order is randomized per run, so this output is not reproducible; collect and sort the keys first")
				return true
			}
			if id, isID := n.Fun.(*ast.Ident); isID && id.Name == "append" && len(n.Args) >= 1 {
				checkAppend(pass, fd, rng, n)
			}
		}
		return true
	})
}

// isEmitCall reports whether call moves data toward output: any fmt
// package function, or a method whose name marks an encoder/writer.
func isEmitCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, isID := sel.X.(*ast.Ident); isID {
		if pkg, isPkg := info.Uses[id].(*types.PkgName); isPkg {
			return pkg.Imported().Path() == "fmt"
		}
	}
	return emitMethods[sel.Sel.Name]
}

// checkAppend flags append to an accumulator declared outside the
// range statement unless the function later sorts that accumulator.
// Per-iteration locals are fine (their order dies with the iteration),
// and a sorted accumulator launders the map order away.
func checkAppend(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, call *ast.CallExpr) {
	info := pass.TypesInfo
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return // declared inside the loop; order dies each iteration
	}
	if functionSorts(info, fd, obj) {
		return
	}
	pass.Reportf(call.Pos(), "append to %s inside a range over a map without a sort anywhere in %s; the slice order changes run to run — sort %s (or iterate sorted keys)", id.Name, fd.Name.Name, id.Name)
}

// functionSorts reports whether fd contains a sort or slices package
// call whose arguments mention obj. Deliberately flow-insensitive: a
// conditional `if len(xs) > 0 { sort.Strings(xs) }` still launders the
// order, and demanding post-dominance would flag it spuriously.
func functionSorts(info *types.Info, fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkg, ok := info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkg.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if mid, isID := m.(*ast.Ident); isID && info.Uses[mid] == obj {
					mentioned = true
				}
				return !mentioned
			})
			if mentioned {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// ---- pointer formatting ---------------------------------------------

// checkPointerFormat flags %p in constant format strings of fmt calls:
// addresses are per-run values, so a %p in output breaks byte-identity.
func checkPointerFormat(pass *analysis.Pass, f *ast.File) {
	info := pass.TypesInfo
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkg, ok := info.Uses[id].(*types.PkgName)
		if !ok || pkg.Imported().Path() != "fmt" {
			return true
		}
		for _, arg := range call.Args {
			lit, isLit := ast.Unparen(arg).(*ast.BasicLit)
			if !isLit || lit.Kind.String() != "STRING" {
				continue
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil {
				continue
			}
			if strings.Contains(s, "%p") {
				pass.Reportf(lit.Pos(), "%%p formats a pointer address, which differs every run; print a stable identifier instead")
			}
		}
		return true
	})
}
