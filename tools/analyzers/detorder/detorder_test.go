package detorder_test

import (
	"testing"

	"abftchol/tools/analyzers/analysistest"
	"abftchol/tools/analyzers/detorder"
)

func TestDetorder(t *testing.T) {
	analysistest.Run(t, detorder.Analyzer, "testdata/src/detordertest",
		analysistest.ImportAs("abftchol/internal/obs"))
}

// TestDetorderScope loads map-order emission under an import path
// outside the deterministic-output packages; no diagnostics may fire.
func TestDetorderScope(t *testing.T) {
	analysistest.Run(t, detorder.Analyzer, "testdata/src/unscoped")
}
