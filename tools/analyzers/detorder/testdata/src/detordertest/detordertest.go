// Package detordertest exercises the detorder analyzer: map ranges
// feeding emit sinks, unsorted accumulators, the inherited detsim
// clock rules, pointer formatting, and the //nolint escape.
package detordertest

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// emitInRange stamps map iteration order straight into the stream.
func emitInRange(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "emit inside a range over a map"
	}
}

// encodeInRange streams one JSON document per key, in map order.
func encodeInRange(enc *json.Encoder, m map[string]int) {
	for k := range m {
		enc.Encode(k) // want "emit inside a range over a map"
	}
}

// buildInRange accumulates rendered text per key, in map order.
func buildInRange(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "emit inside a range over a map"
	}
	return b.String()
}

// sortedKeys is the sanctioned pattern: collect, sort, then emit.
func sortedKeys(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// appendNoSort returns keys in iteration order and never sorts.
func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside a range over a map without a sort"
	}
	return keys
}

// conditionalSort still launders the order: the sort check is
// deliberately flow-insensitive, so a guarded sort is enough.
func conditionalSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	if len(keys) > 1 {
		sort.Strings(keys)
	}
	return keys
}

// mapToMap re-keys into another map: order-insensitive, allowed.
func mapToMap(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// perIterationLocal appends to a slice declared inside the body; its
// order dies with the iteration.
func perIterationLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, v*2)
		}
		total += len(doubled)
	}
	return total
}

// clockInOutput shows the detsim rules ride along in these packages.
func clockInOutput(w io.Writer) {
	fmt.Fprintf(w, "took %v\n", time.Now()) // want "reads the wall clock"
}

// pointerFormat prints an address, which differs every run.
func pointerFormat(w io.Writer, v *int) {
	fmt.Fprintf(w, "at %p\n", v) // want "formats a pointer address"
}

// escaped exercises the sanctioned suppression.
func escaped(w io.Writer, m map[string]bool) {
	for k := range m {
		fmt.Fprintln(w, k) //nolint:detorder — debug dump; ordering is cosmetic
	}
}
