// Package unscoped emits in map order under an import path outside
// detorder's scope; no diagnostics may fire.
package unscoped

import (
	"fmt"
	"io"
)

func dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}
