package matindex_test

import (
	"testing"

	"abftchol/tools/analyzers/analysistest"
	"abftchol/tools/analyzers/matindex"
)

func TestMatindex(t *testing.T) {
	analysistest.Run(t, matindex.Analyzer, "testdata/src/matindextest")
}
