// Package matindextest exercises the matindex analyzer: indexing or
// slicing a mat.Matrix Data field is flagged; the accessor API,
// passing the whole buffer, same-named fields on other types, and the
// nolint escape are not.
package matindextest

import "abftchol/internal/mat"

func flaggedIndex(m *mat.Matrix, i, j int) float64 {
	return m.Data[i+j*m.Stride] // want "column-major"
}

func flaggedSlice(m *mat.Matrix, j int) []float64 {
	return m.Data[j*m.Stride:] // want "column-major"
}

func flaggedValueReceiver(m mat.Matrix) float64 {
	return m.Data[0] // want "column-major"
}

func allowedAccessors(m *mat.Matrix, i, j int) float64 {
	m.Set(i, j, 1)
	m.Add(i, j, 1)
	_ = m.Col(j)
	_ = m.Off(i, j)
	_ = m.View(i, j, 1, 1)
	return m.At(i, j)
}

// allowedWholeBuffer passes the raw storage (with its stride) to a
// BLAS-style kernel without deriving any offsets — the sanctioned use.
func allowedWholeBuffer(m *mat.Matrix, kernel func([]float64, int)) {
	kernel(m.Data, m.Stride)
}

type notAMatrix struct {
	Data []float64
}

func allowedOtherType(x notAMatrix) float64 {
	return x.Data[0]
}

func escaped(m *mat.Matrix) float64 {
	return m.Data[0] //nolint:matindex — exercising the per-analyzer escape hatch
}
