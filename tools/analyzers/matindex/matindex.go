// Package matindex keeps the column-major storage layout a
// single-package concern. Every element of a mat.Matrix lives at
// Data[i+j*Stride]; that arithmetic is encapsulated by At/Set/Add/
// Col/View/Off inside internal/mat. Any other package indexing or
// slicing the raw Data field re-derives the layout by hand, which is
// exactly how a row-major/column-major mixup slips in — and a
// transposed access pattern produces wrong checksums that look like
// injected faults. Passing the whole Data slice (plus Stride) to a
// BLAS kernel is fine; computing offsets into it outside internal/mat
// is not.
package matindex

import (
	"go/ast"
	"go/types"

	"abftchol/tools/analyzers/analysis"
)

// Doc explains the analyzer; it is also the driver help text.
const Doc = "forbid manual mat.Matrix.Data index arithmetic outside internal/mat"

// matrixPkg is the only package allowed to do layout arithmetic.
const matrixPkg = "abftchol/internal/mat"

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name:      "matindex",
	Doc:       Doc,
	Scope:     "everywhere except internal/mat",
	AppliesTo: analysis.PathNotIn(matrixPkg),
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var x ast.Expr
			switch e := n.(type) {
			case *ast.IndexExpr:
				x = e.X
			case *ast.SliceExpr:
				x = e.X
			default:
				return true
			}
			sel, ok := x.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Data" {
				return true
			}
			if !isMatMatrix(pass.TypesInfo.Types[sel.X].Type) {
				return true
			}
			pass.Reportf(n.Pos(), "manual Data index arithmetic re-derives the column-major layout; use At/Set/Col/View/Off so the layout stays inside internal/mat")
			return true
		})
	}
	return nil
}

// isMatMatrix reports whether t is mat.Matrix or *mat.Matrix.
func isMatMatrix(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Matrix" && obj.Pkg() != nil && obj.Pkg().Path() == matrixPkg
}
