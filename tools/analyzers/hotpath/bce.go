package hotpath

// Bounds-check-elimination hints. The Go compiler's prove pass removes
// the bounds check from s[i] only when it can see the loop bound the
// index by len(s): ranging over s itself, or a loop condition whose
// bound is provably the slice's length because of a re-slice hoisted
// above the loop. Crucially, two slices with the *same textual extent*
// are not proven equal length — `a := base[p:q]; c := base2[p:q]` with
// `for i := range c { a[i] }` keeps the check. Only a len-anchored
// re-slice (`a = a[:len(c)]`, `a := base[p:][:n]` against `i < n`, or a
// make of the same extent) ties the lengths together in SSA. This file
// recognizes exactly those shapes, syntactically, and flags every other
// slice index in an innermost loop; tools/escapecheck pins the same
// claim against the compiler's -d=ssa/check_bce output so the
// recognizer cannot drift from what the prove pass actually does.
//
// The check is deliberately restricted to innermost loops (where the
// check costs a branch per element) and to the upper bound (the lower
// bound falls out of induction from a non-negative start, which the
// prove pass handles far more generally than any syntactic rule could;
// check_bce remains the ground truth for it).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// anchor records a point where a slice variable's length was pinned to
// a known extent: s = s[:n], s := base[off:][:n], s := make([]T, n).
type anchor struct {
	pos    token.Pos
	extent string // source text of the expression len(s) now equals
}

// bce runs the bounds-check-hint pass over one checked function.
func (w *walker) bce(fd *ast.FuncDecl) {
	anchors := collectAnchors(fd)
	var loops []struct {
		stmt  ast.Stmt
		depth int
	}
	var find func(n ast.Node, depth int)
	find = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch l := m.(type) {
			case *ast.ForStmt:
				loops = append(loops, struct {
					stmt  ast.Stmt
					depth int
				}{l, depth + 1})
				find(l.Body, depth+1)
				return false
			case *ast.RangeStmt:
				loops = append(loops, struct {
					stmt  ast.Stmt
					depth int
				}{l, depth + 1})
				find(l.Body, depth+1)
				return false
			}
			return true
		})
	}
	find(fd.Body, 0)

	for _, l := range loops {
		if !innermost(l.stmt) {
			continue
		}
		w.bceLoop(l.stmt, l.depth, anchors)
	}
}

// innermost reports whether the loop contains no nested loop. Only
// innermost bodies are held to the eliminable-index rule; an index in
// an outer loop runs once per tile, not once per element.
func innermost(l ast.Stmt) bool {
	body := loopBody(l)
	nested := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			nested = true
		}
		return !nested
	})
	return !nested
}

func loopBody(l ast.Stmt) *ast.BlockStmt {
	switch l := l.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// bceLoop classifies one innermost loop and checks every slice index
// in its body. Loops outside the two provable shapes (range over a
// slice with a key, or `for i := lo; i < bound; i++`) are skipped: the
// analyzer flags only what it can prove non-eliminable.
func (w *walker) bceLoop(l ast.Stmt, depth int, anchors map[string][]anchor) {
	var (
		iv        types.Object // induction variable
		rangedStr string       // range form: source text of the ranged slice
		rangedExt string       // range form: the ranged slice's own anchored extent
		bound     string       // for form: source text of the upper bound
	)
	switch l := l.(type) {
	case *ast.RangeStmt:
		key, ok := l.Key.(*ast.Ident)
		if !ok || key.Name == "_" {
			return
		}
		if !isSliceType(w.info.TypeOf(l.X)) {
			return
		}
		iv = w.info.Defs[key]
		if iv == nil {
			iv = w.info.Uses[key]
		}
		rangedStr = types.ExprString(l.X)
		rangedExt = latestExtent(anchors, rangedStr, l.Pos())
	case *ast.ForStmt:
		cond, ok := l.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.LSS {
			return
		}
		id, ok := ast.Unparen(cond.X).(*ast.Ident)
		if !ok {
			return
		}
		iv = w.info.Uses[id]
		if iv == nil {
			iv = w.info.Defs[id]
		}
		post, ok := l.Post.(*ast.IncDecStmt)
		if !ok || post.Tok != token.INC {
			return
		}
		pid, ok := ast.Unparen(post.X).(*ast.Ident)
		if !ok || w.info.Uses[pid] != iv {
			return
		}
		bound = types.ExprString(cond.Y)
	default:
		return
	}
	if iv == nil {
		return
	}

	ast.Inspect(loopBody(l), func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure body is not this loop's straight line
		}
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if inSpans(w.cold, ix.Pos()) {
			return true
		}
		if !isSliceType(w.info.TypeOf(ix.X)) {
			return true
		}
		sStr := types.ExprString(ix.X)
		id, ok := ast.Unparen(ix.Index).(*ast.Ident)
		if !ok || (w.info.Uses[id] != iv && w.info.Defs[id] != iv) {
			w.reportf(ix.Pos(), depth,
				"bounds check on %s[%s] is not eliminable (index is not the loop induction variable)",
				sStr, types.ExprString(ix.Index))
			return true
		}
		sExt := latestExtent(anchors, sStr, l.Pos())
		ok = false
		switch {
		case rangedStr != "": // range i over rangedStr
			// Same tight extent counts: two [:n] re-slices share the
			// one SSA value n, which check_bce confirms is proven.
			ok = sStr == rangedStr || sExt == "len("+rangedStr+")" ||
				(sExt != "" && sExt == rangedExt)
		default: // for iv < bound
			ok = bound == "len("+sStr+")" || (sExt != "" && sExt == bound)
		}
		if !ok {
			w.reportf(ix.Pos(), depth,
				"bounds check on %s[%s] is not eliminable; hoist a re-slice (e.g. %s = %s[:len(...)]) above the loop",
				sStr, id.Name, sStr, sStr)
		}
		return true
	})
}

func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// collectAnchors gathers, flow-insensitively, every statement in fd
// that pins a slice variable's length to a source-level extent. The
// position ordering stands in for dominance — good enough for the
// straight-line prologue-then-loop shape of the kernels, and audited
// by the compiler ground truth when it is not.
func collectAnchors(fd *ast.FuncDecl) map[string][]anchor {
	out := map[string][]anchor{}
	add := func(lhs ast.Expr, rhs ast.Expr) {
		ext := extentOf(rhs)
		if ext == "" {
			return
		}
		name := types.ExprString(lhs)
		out[name] = append(out[name], anchor{pos: lhs.Pos(), extent: ext})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					add(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					add(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// extentOf returns the source text of the expression the result of e
// provably has as its length, or "" when no extent is pinned:
//
//	x[:n], x[0:n], base[off:][:n]  -> n
//	make([]T, n)                   -> n
//
// Deliberately absent: x[lo : lo+n]. The compiler computes that length
// as (lo+n)-lo and — verified against -d=ssa/check_bce — does NOT
// simplify it to n, so a loop bounded by n keeps its checks. The
// two-step base[off:][:n] form is the idiom that actually proves.
func extentOf(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		if e.High == nil {
			return ""
		}
		if e.Low == nil || types.ExprString(e.Low) == "0" {
			return types.ExprString(e.High)
		}
		return ""
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "make" && len(e.Args) >= 2 {
			return types.ExprString(e.Args[1])
		}
	}
	return ""
}

// latestExtent returns the extent of the last anchor for name strictly
// before pos, or "".
func latestExtent(anchors map[string][]anchor, name string, pos token.Pos) string {
	best := ""
	bestPos := token.NoPos
	for _, a := range anchors[name] {
		if a.pos < pos && a.pos >= bestPos {
			best = a.extent
			bestPos = a.pos
		}
	}
	return best
}
