package hotpath_test

import (
	"testing"

	"abftchol/tools/analyzers/analysistest"
	"abftchol/tools/analyzers/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, hotpath.Analyzer, "testdata/src/hotpathtest",
		analysistest.ImportAs("abftchol/internal/blas/hotpathtest"))
}

// TestHotpathScope loads an annotated allocating kernel under an
// import path outside the hot packages; no diagnostics may fire.
func TestHotpathScope(t *testing.T) {
	analysistest.Run(t, hotpath.Analyzer, "testdata/src/unscoped")
}
