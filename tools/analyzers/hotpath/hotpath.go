// Package hotpath proves performance invariants of the fused-ABFT
// BLAS3 hot path. The blocked kernels in internal/blas and the
// checksum-update routines in internal/checksum only hit their target
// throughput while their inner loops stay allocation-free, escape-free
// and bounds-check-eliminated — properties that regress silently under
// refactoring because the code still computes the right numbers,
// just slower. This analyzer pins them at lint time; its sibling
// tools/escapecheck cross-checks the same annotations against the real
// compiler's -m/-d=ssa/check_bce diagnostics.
//
// A function opts in with `// abft:hotpath` in its doc comment. Inside
// annotated functions — and inside their must-inline helpers, the
// small leaf functions the call graph reaches from an annotated root —
// the analyzer reports:
//
//   - heap-allocating constructs: make, new, append, composite
//     literals, and string concatenation;
//   - boxing of non-pointer values into interfaces (call arguments,
//     assignments, returns);
//   - closures capturing an enclosing loop's induction variable;
//   - defer statements;
//   - synchronization: channel send/receive/close, select, and calls
//     on sync types (sync.Pool Get/Put are sanctioned at loop depth 0
//     — the pooling idiom the allocation findings point to — and
//     flagged inside loops);
//   - map ranges;
//   - calls to functions outside the hot set: package-local callees
//     that are neither annotated nor must-inline, cross-package
//     callees outside the hot-path scope and the math intrinsics, and
//     dynamic calls through function values or interfaces;
//   - index expressions in innermost loops whose bounds check the
//     compiler provably cannot eliminate (see below).
//
// Every diagnostic carries the construct's loop depth ("depth 2"), so
// inner-loop findings rank above setup-code findings: a one-time
// allocation at depth 0 is a cleanup, the same allocation at depth 3
// is the whole regression.
//
// Cold paths are exempt: the arguments of panic(...) and the body of
// an if whose last statement returns a non-nil error or panics. Abort
// diagnostics may allocate; steady-state code may not.
//
// # Bounds-check elimination hints
//
// In an innermost loop, indexing s[i] is eliminable only when the
// compiler can see len(s) bound the induction variable. The analyzer
// recognizes the two provable shapes and flags everything else:
//
//	for i := range s       { ... s[i] ... }           // ranged slice
//	for i := range r       { ... s[i] ... }           // s = s[:len(r)] hoisted above the loop
//	for i := lo; i < n; i++ { ... s[i] ... }          // n == len(s), or s re-sliced to extent n
//
// The re-slice anchor (`s = s[:len(r)]`, `s := base[off:][:n]`, or a
// make of extent n) must appear before the loop. Index expressions
// that are not the plain induction variable (strided accesses like
// a[j+k*lda]) are flagged unconditionally — no Go compiler eliminates
// them — and need either restructuring or a //nolint:hotpath with the
// arithmetic argument for why the access is cheap.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"abftchol/tools/analyzers/analysis"
)

// Doc explains the analyzer; it is also the driver help text.
const Doc = "inside // abft:hotpath functions and their must-inline helpers, forbid heap allocation, interface boxing, defers, sync and channel ops, map ranges, loop-variable captures, and calls leaving the hot set, and require bounds-check-eliminable indexing in innermost loops; findings carry their loop depth"

// Marker is the annotation that opts a function into the analysis.
const Marker = "abft:hotpath"

// hotScope limits the analyzer to the packages whose throughput the
// ROADMAP's kernel work depends on. The same predicate doubles as the
// cross-package call policy: a call into a package the analyzer also
// covers is trusted, because that package's own pass checks its
// annotated kernels.
var hotScope = analysis.PathIn(
	"abftchol/internal/blas",
	"abftchol/internal/checksum",
	"abftchol/internal/mat",
)

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name:      "hotpath",
	Doc:       Doc,
	Scope:     "internal/blas, internal/checksum, internal/mat",
	AppliesTo: hotScope,
	Run:       run,
}

// Annotated reports whether the declaration's doc comment carries the
// abft:hotpath marker. Exported for tools/escapecheck's report, which
// lists the annotated set next to the compiler's verdicts.
func Annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == Marker || strings.HasPrefix(text, Marker+" ") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	cg := analysis.BuildCallGraph(pass)

	// The hot set: annotated roots plus every must-inline helper
	// reachable from one through package-local calls. Helpers are
	// checked under the same rules as their callers — after inlining
	// they *are* the caller's inner loop — while a call to a large
	// non-annotated function is a finding at the call site.
	hot := map[*types.Func]bool{}
	root := map[*types.Func]string{} // helper -> annotated root it serves
	var order []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !Annotated(fd) {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				hot[fn] = true
				order = append(order, fd)
			}
		}
	}
	if len(order) == 0 {
		return nil
	}
	for queue := append([]*ast.FuncDecl(nil), order...); len(queue) > 0; {
		fd := queue[0]
		queue = queue[1:]
		caller, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.CalleeOf(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() != pass.Pkg || hot[callee] {
				return true
			}
			decl := cg.Decl(callee)
			if decl == nil || !mustInline(decl) {
				return true // flagged later at the call site
			}
			hot[callee] = true
			if r, ok := root[caller]; ok {
				root[callee] = r
			} else {
				root[callee] = caller.Name()
			}
			order = append(order, decl)
			queue = append(queue, decl)
			return true
		})
	}

	for _, fd := range order {
		fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		w := &walker{
			pass:    pass,
			info:    pass.TypesInfo,
			hot:     hot,
			fname:   fd.Name.Name,
			helper:  root[fn],
			results: fd.Type.Results,
			cold:    coldSpans(pass.TypesInfo, fd),
		}
		w.stmtList(fd.Body.List, 0)
		w.bce(fd)
	}
	return nil
}

// mustInline decides whether a package-local callee is small enough
// that the compiler inlines it into the hot loop (so its body must
// obey the hot-path rules) rather than a real call (which the caller
// gets flagged for). The heuristic mirrors the inliner's hard
// disqualifiers and approximates its cost budget with a node count.
func mustInline(fd *ast.FuncDecl) bool {
	if fd.Body == nil {
		return false
	}
	nodes, ok := 0, true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		nodes++
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.DeferStmt, *ast.GoStmt, *ast.SelectStmt, *ast.FuncLit:
			ok = false
		}
		return ok
	})
	return ok && nodes <= 80
}

// ---- cold paths ------------------------------------------------------

// span is a half-open position interval of exempt source.
type span struct{ lo, hi token.Pos }

// coldSpans collects the abort regions of fd: panic call expressions
// and if-bodies that end by returning a non-nil error or panicking.
// Findings inside them are suppressed — the hot path is the code that
// runs when nothing is wrong.
func coldSpans(info *types.Info, fd *ast.FuncDecl) []span {
	var out []span
	errResult := returnsError(info, fd.Type)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					out = append(out, span{n.Pos(), n.End()})
				}
			}
		case *ast.FuncLit:
			// A literal's own error contract differs from fd's; keep
			// its panic spans (the CallExpr case above still fires) but
			// don't credit its returns against fd's signature.
			errInner := returnsError(info, n.Type)
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if ifs, ok := m.(*ast.IfStmt); ok && coldIfBody(info, ifs, errInner) {
					out = append(out, span{ifs.Body.Pos(), ifs.Body.End()})
				}
				return true
			})
			return false
		case *ast.IfStmt:
			if coldIfBody(info, n, errResult) {
				out = append(out, span{n.Body.Pos(), n.Body.End()})
			}
		}
		return true
	})
	return out
}

// coldIfBody reports whether the if's body terminates in an error
// return (the function has an error result and the returned value is
// not the nil literal) or a panic.
func coldIfBody(info *types.Info, ifs *ast.IfStmt, errResult bool) bool {
	body := ifs.Body.List
	if len(body) == 0 {
		return false
	}
	switch last := body[len(body)-1].(type) {
	case *ast.ReturnStmt:
		if !errResult || len(last.Results) == 0 {
			return false
		}
		final := ast.Unparen(last.Results[len(last.Results)-1])
		if id, ok := final.(*ast.Ident); ok && id.Name == "nil" {
			return false
		}
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" {
			return false
		}
		_, isBuiltin := info.Uses[id].(*types.Builtin)
		return isBuiltin
	}
	return false
}

func returnsError(info *types.Info, ft *ast.FuncType) bool {
	if ft.Results == nil || len(ft.Results.List) == 0 {
		return false
	}
	last := ft.Results.List[len(ft.Results.List)-1]
	t := info.TypeOf(last.Type)
	return t != nil && t.String() == "error"
}

func inSpans(spans []span, pos token.Pos) bool {
	for _, s := range spans {
		if pos >= s.lo && pos < s.hi {
			return true
		}
	}
	return false
}

// ---- the statement/expression walk ----------------------------------

type walker struct {
	pass    *analysis.Pass
	info    *types.Info
	hot     map[*types.Func]bool
	fname   string
	helper  string // annotated root when fname is a must-inline helper
	results *ast.FieldList
	cold    []span
	// loopVars holds the induction variables of the loops enclosing
	// the current node, for the capture check.
	loopVars map[types.Object]bool
}

// where renders the hot context of a finding.
func (w *walker) where() string {
	if w.helper != "" {
		return w.fname + " (must-inline helper of hot path " + w.helper + ")"
	}
	return w.fname
}

func (w *walker) reportf(pos token.Pos, depth int, format string, args ...any) {
	if inSpans(w.cold, pos) {
		return
	}
	args = append(args, w.where(), depth)
	w.pass.Reportf(pos, format+" in hot path %s (loop depth %d)", args...)
}

func (w *walker) stmtList(list []ast.Stmt, depth int) {
	for _, s := range list {
		w.stmt(s, depth)
	}
}

func (w *walker) stmt(s ast.Stmt, depth int) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmtList(s.List, depth)
	case *ast.ForStmt:
		w.stmt(s.Init, depth)
		w.pushLoopVar(s.Init)
		// Condition and post run once per iteration: body depth.
		w.expr(s.Cond, depth+1)
		w.stmt(s.Post, depth+1)
		w.stmtList(s.Body.List, depth+1)
	case *ast.RangeStmt:
		w.expr(s.X, depth)
		if t := w.info.TypeOf(s.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				w.reportf(s.Pos(), depth, "map range (nondeterministic order, per-iteration hashing)")
			}
		}
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if obj := w.info.Defs[id]; obj != nil {
					w.setLoopVar(obj)
				}
			}
		}
		w.stmtList(s.Body.List, depth+1)
	case *ast.IfStmt:
		w.stmt(s.Init, depth)
		w.expr(s.Cond, depth)
		w.stmtList(s.Body.List, depth)
		w.stmt(s.Else, depth)
	case *ast.SwitchStmt:
		w.stmt(s.Init, depth)
		w.expr(s.Tag, depth)
		w.caseBodies(s.Body, depth)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, depth)
		w.stmt(s.Assign, depth)
		w.caseBodies(s.Body, depth)
	case *ast.SelectStmt:
		w.reportf(s.Pos(), depth, "select (blocking channel synchronization)")
		w.caseBodies(s.Body, depth)
	case *ast.DeferStmt:
		w.reportf(s.Pos(), depth, "defer (per-call scheduling overhead, blocks inlining)")
		w.expr(s.Call, depth)
	case *ast.GoStmt:
		w.expr(s.Call, depth)
	case *ast.SendStmt:
		w.reportf(s.Pos(), depth, "channel send")
		w.expr(s.Chan, depth)
		w.expr(s.Value, depth)
	case *ast.AssignStmt:
		w.checkAssign(s, depth)
		for _, e := range s.Lhs {
			w.expr(e, depth)
		}
		for _, e := range s.Rhs {
			w.expr(e, depth)
		}
	case *ast.ReturnStmt:
		w.checkReturn(s, depth)
		for _, e := range s.Results {
			w.expr(e, depth)
		}
	case *ast.ExprStmt:
		w.expr(s.X, depth)
	case *ast.IncDecStmt:
		w.expr(s.X, depth)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.checkVarSpec(vs, depth)
					for _, v := range vs.Values {
						w.expr(v, depth)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, depth)
	default:
		// Branch statements and empties carry no expressions.
	}
}

func (w *walker) caseBodies(body *ast.BlockStmt, depth int) {
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.expr(e, depth)
			}
			w.stmtList(c.Body, depth)
		case *ast.CommClause:
			w.stmt(c.Comm, depth)
			w.stmtList(c.Body, depth)
		}
	}
}

func (w *walker) pushLoopVar(init ast.Stmt) {
	as, ok := init.(*ast.AssignStmt)
	if !ok || as.Tok != token.DEFINE {
		return
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := w.info.Defs[id]; obj != nil {
				w.setLoopVar(obj)
			}
		}
	}
}

func (w *walker) setLoopVar(obj types.Object) {
	if w.loopVars == nil {
		w.loopVars = map[types.Object]bool{}
	}
	w.loopVars[obj] = true
}

func (w *walker) expr(e ast.Expr, depth int) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.call(e, depth)
	case *ast.CompositeLit:
		w.reportf(e.Pos(), depth, "composite literal allocates")
		for _, el := range e.Elts {
			w.expr(el, depth)
		}
	case *ast.FuncLit:
		w.checkCapture(e, depth)
		w.stmtList(e.Body.List, depth)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			w.reportf(e.Pos(), depth, "channel receive")
		}
		w.expr(e.X, depth)
	case *ast.BinaryExpr:
		if e.Op == token.ADD && w.isString(e.X) {
			w.reportf(e.Pos(), depth, "string concatenation allocates")
		}
		w.expr(e.X, depth)
		w.expr(e.Y, depth)
	case *ast.ParenExpr:
		w.expr(e.X, depth)
	case *ast.StarExpr:
		w.expr(e.X, depth)
	case *ast.SelectorExpr:
		w.expr(e.X, depth)
	case *ast.IndexExpr:
		w.expr(e.X, depth)
		w.expr(e.Index, depth)
	case *ast.SliceExpr:
		w.expr(e.X, depth)
		w.expr(e.Low, depth)
		w.expr(e.High, depth)
		w.expr(e.Max, depth)
	case *ast.TypeAssertExpr:
		w.expr(e.X, depth)
	case *ast.KeyValueExpr:
		w.expr(e.Key, depth)
		w.expr(e.Value, depth)
	}
}

func (w *walker) isString(e ast.Expr) bool {
	t := w.info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// ---- calls -----------------------------------------------------------

func (w *walker) call(call *ast.CallExpr, depth int) {
	// Conversions are free or cheap; walk the operand only.
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
		for _, a := range call.Args {
			w.expr(a, depth)
		}
		return
	}
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		// Immediately-invoked literal: its body runs here.
		w.checkCapture(fl, depth)
		w.stmtList(fl.Body.List, depth)
		for _, a := range call.Args {
			w.expr(a, depth)
		}
		return
	}
	if id := builtinName(w.info, call.Fun); id != "" {
		switch id {
		case "make", "new":
			w.reportf(call.Pos(), depth, "%s allocates", id)
		case "append":
			w.reportf(call.Pos(), depth, "append may grow and allocate")
		case "close":
			w.reportf(call.Pos(), depth, "channel close")
		case "panic":
			// The panic and everything it evaluates is a cold span;
			// nothing to walk.
			return
		}
		for _, a := range call.Args {
			w.expr(a, depth)
		}
		return
	}

	callee := analysis.CalleeOf(w.info, call)
	switch {
	case callee == nil:
		w.reportf(call.Pos(), depth, "dynamic call (function value or interface method) leaves the hot set")
	case isSyncCall(callee):
		if isPoolCall(callee) {
			if depth > 0 {
				w.reportf(call.Pos(), depth, "sync.Pool %s inside a loop (pool at call granularity, not per iteration)", callee.Name())
			}
		} else {
			w.reportf(call.Pos(), depth, "sync.%s.%s (lock/synchronization op)", recvTypeName(callee), callee.Name())
		}
	case callee.Pkg() == nil:
		// error.Error and friends from the universe scope: dynamic.
		w.reportf(call.Pos(), depth, "dynamic call (function value or interface method) leaves the hot set")
	case callee.Pkg() == w.pass.Pkg:
		if !w.hot[callee] {
			w.reportf(call.Pos(), depth, "call to %s, which is neither // abft:hotpath nor must-inline", callee.Name())
		}
	default:
		path := callee.Pkg().Path()
		if !intrinsicPkg(path) && !hotScope(path) {
			w.reportf(call.Pos(), depth, "call to %s.%s leaves the hot-path scope", callee.Pkg().Name(), callee.Name())
		}
	}

	w.checkCallBoxing(call, depth)
	w.expr(call.Fun, depth)
	for _, a := range call.Args {
		w.expr(a, depth)
	}
}

// intrinsicPkg lists the packages whose calls compile to instructions
// or tight leaf code: the math intrinsics the kernels lean on.
func intrinsicPkg(path string) bool {
	return path == "math" || path == "math/bits"
}

func builtinName(info *types.Info, fun ast.Expr) string {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
		return id.Name
	}
	return ""
}

func isSyncCall(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "sync" && recvTypeName(fn) != ""
}

func isPoolCall(fn *types.Func) bool {
	return isSyncCall(fn) && recvTypeName(fn) == "Pool" && (fn.Name() == "Get" || fn.Name() == "Put")
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// ---- interface boxing ------------------------------------------------

// boxes reports whether assigning e to something of type dst converts
// a non-pointer concrete value into an interface — the conversion that
// heap-allocates. Pointer-shaped values (pointers, channels, maps,
// funcs, unsafe pointers) box into the interface word without
// allocating and are allowed.
func (w *walker) boxes(dst types.Type, e ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	src := w.info.TypeOf(e)
	if src == nil || types.IsInterface(src) {
		return false
	}
	if b, ok := src.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if src.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

func (w *walker) reportBoxing(pos token.Pos, depth int, e ast.Expr) {
	w.reportf(pos, depth, "%s boxes into an interface and allocates", w.info.TypeOf(e).String())
}

func (w *walker) checkCallBoxing(call *ast.CallExpr, depth int) {
	callee := analysis.CalleeOf(w.info, call)
	if callee == nil {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, a := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if w.boxes(pt, a) {
			w.reportBoxing(a.Pos(), depth, a)
		}
	}
}

func (w *walker) checkAssign(s *ast.AssignStmt, depth int) {
	if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 && w.isString(s.Lhs[0]) {
		w.reportf(s.Pos(), depth, "string concatenation allocates")
		return
	}
	// := defines new variables at the RHS's type — no conversion, no
	// boxing. Multi-value unpacking's types are fixed by the call.
	if s.Tok != token.ASSIGN || len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		if w.boxes(w.info.TypeOf(lhs), s.Rhs[i]) {
			w.reportBoxing(s.Rhs[i].Pos(), depth, s.Rhs[i])
		}
	}
}

func (w *walker) checkVarSpec(vs *ast.ValueSpec, depth int) {
	if vs.Type == nil {
		return
	}
	t := w.info.TypeOf(vs.Type)
	for _, v := range vs.Values {
		if w.boxes(t, v) {
			w.reportBoxing(v.Pos(), depth, v)
		}
	}
}

func (w *walker) checkReturn(s *ast.ReturnStmt, depth int) {
	if w.results == nil || len(s.Results) != w.results.NumFields() {
		return
	}
	i := 0
	for _, f := range w.results.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		t := w.info.TypeOf(f.Type)
		for k := 0; k < n && i < len(s.Results); k++ {
			if w.boxes(t, s.Results[i]) {
				w.reportBoxing(s.Results[i].Pos(), depth, s.Results[i])
			}
			i++
		}
	}
}

// ---- loop-variable capture -------------------------------------------

func (w *walker) checkCapture(fl *ast.FuncLit, depth int) {
	if len(w.loopVars) == 0 {
		return
	}
	seen := map[types.Object]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := w.info.Uses[id]
		if obj == nil || !w.loopVars[obj] || seen[obj] {
			return true
		}
		seen[obj] = true
		w.reportf(id.Pos(), depth, "closure captures loop variable %s (per-iteration allocation)", obj.Name())
		return true
	})
}
