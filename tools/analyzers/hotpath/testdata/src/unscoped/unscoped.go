// Package unscoped carries an annotated hot-path violation under an
// import path outside the analyzer's scope; no diagnostics may fire.
package unscoped

// kernel allocates per call, but this package is not in scope.
// abft:hotpath
func kernel(n int) []float64 {
	return make([]float64, n)
}
