// Package hotpathtest exercises the hotpath analyzer: allocation and
// boxing findings with loop depths, must-inline helper traversal,
// cold-path exemptions, BCE hints, and the //nolint escape.
package hotpathtest

import (
	"fmt"
	"math"
	"sync"
)

type vec struct{ x, y float64 }

var pool = sync.Pool{New: func() any { p := make([]float64, 64); return &p }}

// kernelAlloc allocates at depth 0 and inside a loop.
// abft:hotpath
func kernelAlloc(cols [][]float64) {
	buf := make([]float64, 8) // want "make allocates in hot path kernelAlloc \\(loop depth 0\\)"
	_ = buf
	for _, col := range cols {
		tmp := make([]float64, 4) // want "make allocates in hot path kernelAlloc \\(loop depth 1\\)"
		copy(tmp, col)
	}
}

// kernelZeroTrip may run its loop zero times; the per-iteration
// allocation is flagged regardless — the contract is syntactic.
// abft:hotpath
func kernelZeroTrip(s []float64) []float64 {
	var out []float64
	for range s {
		out = append(out, 1) // want "append may grow and allocate in hot path kernelZeroTrip \\(loop depth 1\\)"
	}
	return out
}

// kernelMisc covers new, composite literals, and string concat.
// abft:hotpath
func kernelMisc(names []string) string {
	p := new(float64) // want "new allocates"
	_ = p
	v := vec{1, 2} // want "composite literal allocates"
	_ = v
	s := ""
	for _, n := range names {
		s += n // want "string concatenation allocates in hot path kernelMisc \\(loop depth 1\\)"
	}
	return s
}

// kernelBox assigns a concrete value to an interface inside a loop.
// abft:hotpath
func kernelBox(vals []float64) any {
	var sink any
	for _, v := range vals {
		sink = v // want "float64 boxes into an interface and allocates in hot path kernelBox \\(loop depth 1\\)"
	}
	return sink
}

// kernelCapture builds closures over the induction variable.
// abft:hotpath
func kernelCapture(fns *[]func(), n int) {
	for i := 0; i < n; i++ {
		*fns = append(*fns, func() { _ = i }) // want "append may grow" "closure captures loop variable i"
	}
}

// kernelDefer defers the unlock it should inline.
// abft:hotpath
func kernelDefer(mu *sync.Mutex) {
	mu.Lock()         // want "sync.Mutex.Lock \\(lock/synchronization op\\)"
	defer mu.Unlock() // want "defer \\(per-call scheduling overhead" "sync.Mutex.Unlock \\(lock/synchronization op\\)"
}

// kernelSync covers channel traffic and map iteration.
// abft:hotpath
func kernelSync(ch chan int, m map[int]float64) float64 {
	ch <- 1   // want "channel send"
	x := <-ch // want "channel receive"
	var s float64
	for k := range m { // want "map range \\(nondeterministic order"
		s += m[k]
	}
	return s + float64(x)
}

// kernelPool uses the sanctioned pooling idiom at depth 0 and abuses
// it inside the loop.
// abft:hotpath
func kernelPool(n int) float64 {
	bp := pool.Get().(*[]float64)
	buf := *bp
	var s float64
	for i := 0; i < n; i++ {
		q := pool.Get() // want "sync.Pool Get inside a loop"
		_ = q
		s += float64(i)
	}
	s += buf[0]
	pool.Put(bp)
	return s
}

// kernelDynamic calls through a function value.
// abft:hotpath
func kernelDynamic(f func()) {
	f() // want "dynamic call \\(function value or interface method\\)"
}

// kernelFmt leaves the hot-path scope and boxes the argument.
// abft:hotpath
func kernelFmt(x float64) {
	fmt.Println(x) // want "call to fmt.Println leaves the hot-path scope" "float64 boxes into an interface"
}

// kernelMath stays on the intrinsic allowlist: no findings.
// abft:hotpath
func kernelMath(x float64) float64 {
	return math.Sqrt(x) * math.Abs(x)
}

// kernelCold allocates only on abort paths: error returns and panics
// are exempt.
// abft:hotpath
func kernelCold(n int) error {
	if n < 0 {
		return fmt.Errorf("bad n %d", n)
	}
	if n > 1<<20 {
		panic(fmt.Sprintf("huge n %d", n))
	}
	return nil
}

// kernelNolint shows the sanctioned escape hatch.
// abft:hotpath
func kernelNolint(n int) []float64 {
	return make([]float64, n) //nolint:hotpath — constructor, callers hoist and reuse the result
}

// bigHelper has a loop, so it is not must-inline: calls to it are
// flagged and its body stays outside the hot set.
func bigHelper(x []float64) {
	tmp := make([]float64, len(x))
	for i := range tmp {
		tmp[i] = x[i] * 2
	}
	copy(x, tmp)
}

// kernelCallee calls a package-local function that is neither
// annotated nor must-inline.
// abft:hotpath
func kernelCallee(x []float64) {
	bigHelper(x) // want "call to bigHelper, which is neither"
}

// addTo is leaf-small, so the call graph pulls it into the hot set as
// a must-inline helper of kernelHelper; its panic guard is cold, its
// allocation is not.
func addTo(x []float64, i int, v float64) {
	if i >= len(x) {
		panic("addTo: index out of range")
	}
	scratch := make([]float64, 1) // want "make allocates in hot path addTo \\(must-inline helper of hot path kernelHelper\\) \\(loop depth 0\\)"
	scratch[0] = v
	x[i] += scratch[0]
}

// kernelHelper reaches addTo; the call itself is clean.
// abft:hotpath
func kernelHelper(x []float64) {
	for i := range x {
		addTo(x, i, 1)
	}
}

// kernelBCE exercises the bounds-check hints: ranged slices and
// len-anchored re-slices pass, everything else is flagged.
// abft:hotpath
func kernelBCE(dst, src []float64, n int) {
	for i := range dst {
		dst[i] = src[i] // want "bounds check on src\\[i\\] is not eliminable; hoist a re-slice"
	}
	src = src[:len(dst)]
	for i := range dst {
		dst[i] += src[i]
	}
	for i := 0; i < n; i++ {
		dst[i] = 0 // want "bounds check on dst\\[i\\] is not eliminable; hoist a re-slice"
	}
	d2 := dst[:n]
	for i := 0; i < n; i++ {
		d2[i] = 1
	}
	for j := 0; j < n; j++ {
		dst[0] += src[j*2] // want "bounds check on src\\[j \\* 2\\] is not eliminable \\(index is not the loop induction variable\\)" "bounds check on dst\\[0\\] is not eliminable \\(index is not the loop induction variable\\)"
	}
}
