// Package verifyreadtest exercises the verifyread analyzer against a
// miniature driver that mirrors the shape of internal/core's runOnce
// and runOnceRight, using the real Scheme constants.
package verifyreadtest

import "abftchol/internal/core"

// The analyzer takes its protocol from annotations in the package
// under check; this miniature package declares the same disciplines
// the real core does for its two online schemes.
//
// abft:protocol scheme SchemeOnline ft verify=post-write
// abft:protocol scheme SchemeEnhanced ft verify=pre-read

type hexec struct {
	sch core.Scheme
	k   int
	nb  int
}

func (e *hexec) verifyBlocks(blocks [][2]int) error { return nil }
func (e *hexec) encode()                            {}
func (e *hexec) syrk(j int)                         {}
func (e *hexec) gemm(j int)                         {}
func (e *hexec) potf2(j int) error                  { return nil }
func (e *hexec) trsm(j int)                         {}
func (e *hexec) trailingUpdate(j int)               {}
func (e *hexec) updTRSM(j int)                      {}

// runOnce follows the discipline everywhere except the final TRSM,
// which Online-ABFT requires a post-write verification for.
//
// abft:protocol driver steps=syrk,gemm,potf2,trsm
func (e *hexec) runOnce() error {
	sch := e.sch
	ft := sch.FaultTolerant()
	online := sch == core.SchemeOnline || sch == core.SchemeOnlineScrub
	if ft {
		e.encode()
	}
	for j := 0; j < e.nb; j++ {
		gate := j%e.k == 0
		if sch == core.SchemeEnhanced {
			if err := e.verifyBlocks(nil); err != nil {
				return err
			}
		}
		e.syrk(j)
		if online && j > 0 {
			if err := e.verifyBlocks(nil); err != nil {
				return err
			}
		}
		if m := e.nb - j - 1; m > 0 && j > 0 {
			if sch == core.SchemeEnhanced && gate {
				if err := e.verifyBlocks(nil); err != nil {
					return err
				}
			}
			e.gemm(j)
			if online {
				if err := e.verifyBlocks(nil); err != nil {
					return err
				}
			}
		}
		if err := e.potf2(j); err != nil {
			return err
		}
		if online {
			if err := e.verifyBlocks(nil); err != nil {
				return err
			}
		}
		e.trsm(j) // want "on the SchemeOnline path, trsm can reach the function exit without a subsequent verifyBlocks"
	}
	return nil
}

// runOnceRight never verifies before reads, so every step violates the
// Enhanced pre-read discipline; the trailing update additionally skips
// its post-write verification and demonstrates the escape hatch.
//
// abft:protocol driver steps=potf2,trsm,trailingUpdate
func (e *hexec) runOnceRight() error {
	sch := e.sch
	ft := sch.FaultTolerant()
	for j := 0; j < e.nb; j++ {
		if err := e.potf2(j); err != nil { // want "on the SchemeEnhanced path, potf2 is reachable without a preceding verifyBlocks"
			return err
		}
		if sch == core.SchemeOnline {
			if err := e.verifyBlocks(nil); err != nil {
				return err
			}
		}
		e.trsm(j) // want "on the SchemeEnhanced path, trsm is reachable without a preceding verifyBlocks"
		if ft {
			e.updTRSM(j)
		}
		if sch == core.SchemeOnline {
			if err := e.verifyBlocks(nil); err != nil {
				return err
			}
		}
		e.trailingUpdate(j) //nolint:verifyread — escape-hatch exercise: both disciplines are knowingly violated here
	}
	return nil
}
