// Package verifyread enforces the verification discipline of the two
// online ABFT schemes on the factorization drivers (internal/core).
// Online-ABFT must verify a block's checksum right after the kernel
// that writes it; Enhanced Online-ABFT moves verification to right
// before the kernels that read a block, amortized to every K-th
// iteration where §V-C shows delayed detection stays recoverable. A
// step that drifts out of this discipline silently shrinks the error
// coverage the paper's recovery argument depends on, and nothing
// crashes: fault-campaign numbers just quietly degrade.
//
// The discipline is declared by the drivers themselves through
// `// abft:protocol` annotations (see docs/LINTING.md): each driver
// function lists its protected step methods, and each Scheme constant
// declares its verification discipline. The analyzer checks each
// declared scheme by specializing the driver's CFG to it — the branch
// conditions `sch == SchemeX`, `sch.FaultTolerant()`, and the locals
// derived from them are resolved under the assumed scheme, the K-gate
// (`j%K == 0`) and iteration-progress guards (`j > 0`) are granted —
// and then
//
//   - under a verify=pre-read scheme (Enhanced) every protocol step
//     must be dominated by a verifyBlocks call, and
//   - under a verify=post-write scheme (Online) no protocol step may
//     reach the function exit without passing a verifyBlocks call or
//     an error return.
//
// Schemes declaring verify=scrubbed, verify=final, or verify=none
// place no static ordering obligation here: the scrub and offline
// disciplines are enforced dynamically by the experiments.
package verifyread

import (
	"go/ast"
	"go/types"

	"abftchol/tools/analyzers/analysis"
)

// Doc explains the analyzer; it is also the driver help text.
const Doc = "enforce Online (post-write) and Enhanced (pre-read) checksum-verification ordering in the core drivers"

const corePath = "abftchol/internal/core"

// verifierName is the method whose call satisfies the discipline.
const verifierName = "verifyBlocks"

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name:      "verifyread",
	Doc:       Doc,
	Scope:     "internal/core",
	AppliesTo: analysis.PathIn(corePath),
	Run:       run,
}

func run(pass *analysis.Pass) error {
	protocol := analysis.ParseProtocol(pass.Files)
	for _, e := range protocol.Errors {
		pass.Report(e)
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			spec, ok := protocol.Driver(fd.Name.Name)
			if !ok {
				continue
			}
			checkDriver(pass, protocol, fd, spec.Steps)
		}
	}
	// Annotation drift: the real core package must declare its protocol,
	// or the analyzer is checking air; and scheme directives must stay
	// in one-to-one correspondence with the Scheme constants.
	if pass.ImportPath == corePath && pass.Pkg != nil && pass.Pkg.Name() == "core" {
		checkAnnotationDrift(pass, protocol)
	}
	return nil
}

// checkAnnotationDrift pins the annotations to the declarations of the
// real core package.
func checkAnnotationDrift(pass *analysis.Pass, protocol *analysis.Protocol) {
	if len(protocol.Drivers) == 0 {
		pass.Reportf(pass.Files[0].Name.Pos(), "internal/core declares no `abft:protocol driver` annotation; the verification discipline is unchecked")
	}

	consts := map[string]bool{}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, s := range gd.Specs {
				vs, ok := s.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					c, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok || !isCoreScheme(pass, c.Type()) {
						continue
					}
					consts[c.Name()] = true
					if _, ok := protocol.Scheme(c.Name()); !ok {
						pass.Reportf(name.Pos(), "Scheme constant %s has no `abft:protocol scheme` annotation; declare its verification discipline", c.Name())
					}
				}
			}
		}
	}
	for _, s := range protocol.Schemes {
		if !consts[s.Name] {
			pass.Reportf(s.Pos, "abft:protocol scheme directive names %s but internal/core declares no such Scheme constant", s.Name)
		}
	}
}

func isCoreScheme(pass *analysis.Pass, t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Scheme" && obj.Pkg() == pass.Pkg
}

func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	name := pass.Fset.Position(f.Pos()).Filename
	return len(name) > 8 && name[len(name)-8:] == "_test.go"
}

// callSite holds one protocol-step call found in a driver.
type callSite struct {
	node *analysis.Node
	name string
	call *ast.CallExpr
}

func checkDriver(pass *analysis.Pass, protocol *analysis.Protocol, fd *ast.FuncDecl, steps []string) {
	info := pass.TypesInfo
	stepSet := map[string]bool{}
	for _, s := range steps {
		stepSet[s] = true
	}

	g := analysis.BuildCFG(fd.Body)
	du := analysis.CollectDefUse(fd, info)

	var sites []callSite
	verify := map[*analysis.Node]bool{}
	errReturn := map[*analysis.Node]bool{}
	for _, n := range g.Nodes {
		if n.Kind != analysis.NodeStmt {
			continue
		}
		if ret, ok := n.Stmt.(*ast.ReturnStmt); ok && returnsError(info, ret) {
			errReturn[n] = true
		}
		node := n
		ast.Inspect(n.Stmt, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch {
			case sel.Sel.Name == verifierName:
				verify[node] = true
			case stepSet[sel.Sel.Name]:
				sites = append(sites, callSite{node, sel.Sel.Name, call})
			}
			return true
		})
	}
	if len(sites) == 0 {
		return
	}

	for _, sp := range protocol.Schemes {
		preRead := false
		switch sp.Verify {
		case analysis.VerifyPreRead:
			preRead = true
		case analysis.VerifyPostWrite:
		default:
			continue // scrubbed/final/none: no static ordering obligation
		}
		rs := analysis.SchemeResolver(info, du, corePath, sp)
		opts := analysis.PathOpts{Resolve: rs}
		if preRead {
			// A step reachable from entry without crossing a verify is
			// read-before-verify.
			reach := g.Reachable(g.Entry, analysis.PathOpts{
				Resolve: rs,
				Barrier: func(n *analysis.Node) bool { return verify[n] },
			})
			for _, s := range sites {
				if reach[s.node] && !verify[s.node] {
					pass.Reportf(s.call.Pos(), "on the %s path, %s is reachable without a preceding %s; Enhanced Online-ABFT must verify blocks before they are read", sp.Name, s.name, verifierName)
				}
			}
			continue
		}
		// Post-write: from each live step, the function exit must not be
		// reachable without crossing a verify or aborting with an error.
		live := g.Reachable(g.Entry, opts)
		for _, s := range sites {
			if !live[s.node] {
				continue // this step does not run under the scheme
			}
			after := g.Reachable(s.node, analysis.PathOpts{
				Resolve: rs,
				Barrier: func(n *analysis.Node) bool { return verify[n] || errReturn[n] },
			})
			if after[g.Exit] {
				pass.Reportf(s.call.Pos(), "on the %s path, %s can reach the function exit without a subsequent %s; Online-ABFT must verify blocks right after they are written", sp.Name, s.name, verifierName)
			}
		}
	}
}

// returnsError matches `return err` / `return fmt.Errorf(...)` — a
// return whose single result is a non-nil error expression.
func returnsError(info *types.Info, ret *ast.ReturnStmt) bool {
	if len(ret.Results) != 1 {
		return false
	}
	r := ret.Results[0]
	if id, ok := r.(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	tv, ok := info.Types[r]
	return ok && tv.Type != nil && tv.Type.String() == "error"
}
