// Package verifyread enforces the verification discipline of the two
// online ABFT schemes on the factorization drivers (internal/core).
// Online-ABFT must verify a block's checksum right after the kernel
// that writes it; Enhanced Online-ABFT moves verification to right
// before the kernels that read a block, amortized to every K-th
// iteration where §V-C shows delayed detection stays recoverable. A
// step that drifts out of this discipline silently shrinks the error
// coverage the paper's recovery argument depends on, and nothing
// crashes: fault-campaign numbers just quietly degrade.
//
// The analyzer encodes the discipline as a per-variant protocol table
// (which driver functions exist, which step methods they must guard)
// and checks each scheme by specializing the driver's CFG to it: the
// branch conditions `sch == SchemeX`, `sch.FaultTolerant()`, and the
// locals derived from them are resolved under the assumed scheme, the
// K-gate (`j%K == 0`) and iteration-progress guards (`j > 0`) are
// granted, and then
//
//   - under SchemeEnhanced every protocol step must be dominated by a
//     verifyBlocks call (pre-read verification), and
//   - under SchemeOnline no protocol step may reach the function exit
//     without passing a verifyBlocks call or an error return
//     (post-write verification).
package verifyread

import (
	"go/ast"
	"go/types"

	"abftchol/tools/analyzers/analysis"
)

// Doc explains the analyzer; it is also the driver help text.
const Doc = "enforce Online (post-write) and Enhanced (pre-read) checksum-verification ordering in the core drivers"

const corePath = "abftchol/internal/core"

// verifierName is the method whose call satisfies the discipline.
const verifierName = "verifyBlocks"

// protocol lists, per driver function, the step methods whose launches
// consume or produce blocks on the fault-tolerant path and therefore
// fall under the verification discipline.
var protocol = map[string][]string{
	"runOnce":      {"syrk", "gemm", "potf2", "trsm"},
	"runOnceRight": {"potf2", "trsm", "trailingUpdate"},
}

// spec is one protocol specialization: the scheme constant assumed
// true and the direction of the discipline it imposes.
type spec struct {
	scheme  string // Scheme constant name, e.g. "SchemeEnhanced"
	ft      bool   // value of Scheme.FaultTolerant() under this scheme
	preRead bool   // verify-before-read (Enhanced) vs verify-after-write
}

var specs = []spec{
	{scheme: "SchemeEnhanced", ft: true, preRead: true},
	{scheme: "SchemeOnline", ft: true, preRead: false},
}

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name:      "verifyread",
	Doc:       Doc,
	Scope:     "internal/core",
	AppliesTo: analysis.PathIn(corePath),
	Run:       run,
}

func run(pass *analysis.Pass) error {
	found := map[string]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			steps, ok := protocol[fd.Name.Name]
			if !ok {
				continue
			}
			found[fd.Name.Name] = true
			checkDriver(pass, fd, steps)
		}
	}
	// Table drift: the real core package must declare every driver the
	// table names, or the table (and this analyzer) is checking air.
	if pass.ImportPath == corePath && pass.Pkg != nil && pass.Pkg.Name() == "core" {
		for name := range protocol {
			if !found[name] {
				pass.Reportf(pass.Files[0].Name.Pos(), "verifyread's protocol table names %s but internal/core does not declare it; update the table", name)
			}
		}
	}
	return nil
}

// callSite holds one protocol-step call found in a driver.
type callSite struct {
	node *analysis.Node
	name string
	call *ast.CallExpr
}

func checkDriver(pass *analysis.Pass, fd *ast.FuncDecl, steps []string) {
	info := pass.TypesInfo
	stepSet := map[string]bool{}
	for _, s := range steps {
		stepSet[s] = true
	}

	g := analysis.BuildCFG(fd.Body)
	du := analysis.CollectDefUse(fd, info)

	var sites []callSite
	verify := map[*analysis.Node]bool{}
	errReturn := map[*analysis.Node]bool{}
	for _, n := range g.Nodes {
		if n.Kind != analysis.NodeStmt {
			continue
		}
		if ret, ok := n.Stmt.(*ast.ReturnStmt); ok && returnsError(info, ret) {
			errReturn[n] = true
		}
		node := n
		ast.Inspect(n.Stmt, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch {
			case sel.Sel.Name == verifierName:
				verify[node] = true
			case stepSet[sel.Sel.Name]:
				sites = append(sites, callSite{node, sel.Sel.Name, call})
			}
			return true
		})
	}
	if len(sites) == 0 {
		return
	}

	for _, sp := range specs {
		rs := resolver(info, du, sp)
		opts := analysis.PathOpts{Resolve: rs}
		if sp.preRead {
			// A step reachable from entry without crossing a verify is
			// read-before-verify.
			reach := g.Reachable(g.Entry, analysis.PathOpts{
				Resolve: rs,
				Barrier: func(n *analysis.Node) bool { return verify[n] },
			})
			for _, s := range sites {
				if reach[s.node] && !verify[s.node] {
					pass.Reportf(s.call.Pos(), "on the %s path, %s is reachable without a preceding %s; Enhanced Online-ABFT must verify blocks before they are read", sp.scheme, s.name, verifierName)
				}
			}
			continue
		}
		// Post-write: from each live step, the function exit must not be
		// reachable without crossing a verify or aborting with an error.
		live := g.Reachable(g.Entry, opts)
		for _, s := range sites {
			if !live[s.node] {
				continue // this step does not run under the scheme
			}
			after := g.Reachable(s.node, analysis.PathOpts{
				Resolve: rs,
				Barrier: func(n *analysis.Node) bool { return verify[n] || errReturn[n] },
			})
			if after[g.Exit] {
				pass.Reportf(s.call.Pos(), "on the %s path, %s can reach the function exit without a subsequent %s; Online-ABFT must verify blocks right after they are written", sp.scheme, s.name, verifierName)
			}
		}
	}
}

// returnsError matches `return err` / `return fmt.Errorf(...)` — a
// return whose single result is a non-nil error expression.
func returnsError(info *types.Info, ret *ast.ReturnStmt) bool {
	if len(ret.Results) != 1 {
		return false
	}
	r := ret.Results[0]
	if id, ok := r.(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	tv, ok := info.Types[r]
	return ok && tv.Type != nil && tv.Type.String() == "error"
}

// resolver builds the condition oracle for one specialization. It
// grants the protocol's sanctioned relaxations — the K-gate and
// iteration-progress guards hold — and resolves scheme tests and the
// booleans derived from them.
func resolver(info *types.Info, du *analysis.DefUse, sp spec) func(ast.Expr) (bool, bool) {
	var eval func(e ast.Expr, depth int) (bool, bool)
	eval = func(e ast.Expr, depth int) (bool, bool) {
		if depth > 8 {
			return false, false
		}
		switch e := e.(type) {
		case *ast.ParenExpr:
			return eval(e.X, depth)
		case *ast.UnaryExpr:
			if e.Op.String() == "!" {
				if v, ok := eval(e.X, depth+1); ok {
					return !v, true
				}
			}
		case *ast.BinaryExpr:
			switch e.Op.String() {
			case "&&":
				lv, lk := eval(e.X, depth+1)
				rv, rk := eval(e.Y, depth+1)
				if (lk && !lv) || (rk && !rv) {
					return false, true
				}
				if lk && rk {
					return lv && rv, true
				}
			case "||":
				lv, lk := eval(e.X, depth+1)
				rv, rk := eval(e.Y, depth+1)
				if (lk && lv) || (rk && rv) {
					return true, true
				}
				if lk && rk {
					return false, true
				}
			case "==", "!=":
				if v, ok := schemeTest(info, e.X, e.Y, sp); ok {
					if e.Op.String() == "!=" {
						return !v, true
					}
					return v, true
				}
				// K-gate: j % K == 0 is granted (§V-C permits the
				// amortized discipline).
				if e.Op.String() == "==" && isModulo(e.X) && isZero(e.Y) {
					return true, true
				}
			case ">":
				// Iteration-progress guards (j > 0, m > 0) are granted:
				// the discipline is judged on steady-state iterations.
				if isZero(e.Y) {
					if _, ok := e.X.(*ast.Ident); ok {
						return true, true
					}
				}
			}
		case *ast.CallExpr:
			// sch.FaultTolerant() has a fixed value per scheme.
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "FaultTolerant" {
				if tv, ok := info.Types[sel.X]; ok && isSchemeType(tv.Type) {
					return sp.ft, true
				}
			}
		case *ast.Ident:
			// A boolean local with exactly one definition inherits the
			// resolved value of its defining expression (ft, online,
			// gate in the drivers).
			obj := info.Uses[e]
			if obj == nil {
				break
			}
			if defs := du.Defs[obj]; len(defs) == 1 && defs[0] != nil {
				return eval(defs[0], depth+1)
			}
		}
		return false, false
	}
	return func(cond ast.Expr) (bool, bool) { return eval(cond, 0) }
}

// schemeTest resolves `X == Y` where one side is a Scheme constant and
// the other a non-constant Scheme expression: under the
// specialization, the expression holds exactly the assumed scheme.
func schemeTest(info *types.Info, x, y ast.Expr, sp spec) (bool, bool) {
	if name, ok := schemeConst(info, x); ok && isSchemeExpr(info, y) {
		return name == sp.scheme, true
	}
	if name, ok := schemeConst(info, y); ok && isSchemeExpr(info, x) {
		return name == sp.scheme, true
	}
	return false, false
}

func schemeConst(info *types.Info, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok || !isSchemeType(c.Type()) {
		return "", false
	}
	return c.Name(), true
}

func isSchemeExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	return isSchemeType(tv.Type)
}

func isSchemeType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Scheme" && obj.Pkg() != nil && obj.Pkg().Path() == corePath
}

func isModulo(e ast.Expr) bool {
	b, ok := e.(*ast.BinaryExpr)
	return ok && b.Op.String() == "%"
}

func isZero(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Value == "0"
}
