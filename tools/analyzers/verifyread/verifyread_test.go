package verifyread_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"

	"abftchol/tools/analyzers/analysis"
	"abftchol/tools/analyzers/analysistest"
	"abftchol/tools/analyzers/verifyread"
)

func TestVerifyread(t *testing.T) {
	analysistest.Run(t, verifyread.Analyzer, "testdata/src/verifyreadtest",
		analysistest.ImportAs("abftchol/internal/core/verifyreadtest"))
}

// The tables verifyread hard-coded before the abft:protocol
// annotations existed (PR 2). The drift test pins the
// annotation-derived tables to them byte for byte, so moving the
// protocol into internal/core cannot silently change what is checked.
var legacyProtocol = map[string][]string{
	"runOnce":      {"syrk", "gemm", "potf2", "trsm"},
	"runOnceRight": {"potf2", "trsm", "trailingUpdate"},
}

var legacySpecs = []struct {
	scheme  string
	ft      bool
	preRead bool
}{
	{scheme: "SchemeEnhanced", ft: true, preRead: true},
	{scheme: "SchemeOnline", ft: true, preRead: false},
}

func loadCoreProtocol(t *testing.T) *analysis.Protocol {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, "../../../internal/core", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	byName := map[string]*ast.File{}
	for _, pkg := range pkgs {
		for name, f := range pkg.Files {
			names = append(names, name)
			byName[name] = f
		}
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		files = append(files, byName[name])
	}
	p := analysis.ParseProtocol(files)
	for _, e := range p.Errors {
		t.Errorf("internal/core protocol annotation error at %s: %s", fset.Position(e.Pos), e.Message)
	}
	return p
}

func renderStepTable(table map[string][]string) string {
	names := make([]string, 0, len(table))
	for name := range table {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s: %s\n", name, strings.Join(table[name], ","))
	}
	return b.String()
}

// TestProtocolTableMatchesLegacy proves the annotation-derived driver
// table equals the historical hard-coded one.
func TestProtocolTableMatchesLegacy(t *testing.T) {
	p := loadCoreProtocol(t)
	got, want := renderStepTable(p.StepTable()), renderStepTable(legacyProtocol)
	if got != want {
		t.Errorf("annotation-derived protocol table drifted from the legacy table:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestProtocolSpecsMatchLegacy proves the annotation-derived scheme
// disciplines reproduce the two hard-coded specs — and introduce no
// additional statically-checked discipline, so historical findings are
// reproduced exactly.
func TestProtocolSpecsMatchLegacy(t *testing.T) {
	p := loadCoreProtocol(t)
	for _, ls := range legacySpecs {
		s, ok := p.Scheme(ls.scheme)
		if !ok {
			t.Errorf("no abft:protocol scheme annotation for %s", ls.scheme)
			continue
		}
		if s.FT != ls.ft {
			t.Errorf("%s: ft = %v, legacy %v", ls.scheme, s.FT, ls.ft)
		}
		if got := s.Verify == analysis.VerifyPreRead; got != ls.preRead {
			t.Errorf("%s: preRead = %v (verify=%s), legacy %v", ls.scheme, got, s.Verify, ls.preRead)
		}
	}
	var active []string
	for _, s := range p.Schemes {
		if s.Verify == analysis.VerifyPreRead || s.Verify == analysis.VerifyPostWrite {
			active = append(active, s.Name)
		}
	}
	sort.Strings(active)
	if want := []string{"SchemeEnhanced", "SchemeOnline"}; strings.Join(active, ",") != strings.Join(want, ",") {
		t.Errorf("statically-checked schemes = %v, legacy %v", active, want)
	}
}
