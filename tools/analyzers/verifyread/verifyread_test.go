package verifyread_test

import (
	"testing"

	"abftchol/tools/analyzers/analysistest"
	"abftchol/tools/analyzers/verifyread"
)

func TestVerifyread(t *testing.T) {
	analysistest.Run(t, verifyread.Analyzer, "testdata/src/verifyreadtest",
		analysistest.ImportAs("abftchol/internal/core/verifyreadtest"))
}
