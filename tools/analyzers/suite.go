// Package analyzers registers the abftlint suite: the static passes
// that keep the repository's fault-tolerance invariants machine
// checked. See docs/LINTING.md for the invariant each pass guards and
// the sanctioned //nolint escape hatch.
//
//go:generate go run abftchol/tools/analyzers/gendoc
package analyzers

import (
	"abftchol/tools/analyzers/analysis"
	"abftchol/tools/analyzers/detsim"
	"abftchol/tools/analyzers/floateq"
	"abftchol/tools/analyzers/injectortick"
	"abftchol/tools/analyzers/matindex"
	"abftchol/tools/analyzers/nakedgoroutine"
	"abftchol/tools/analyzers/streamsync"
	"abftchol/tools/analyzers/verifyread"
)

// Suite lists every analyzer the abftlint driver runs, in the order
// findings are attributed.
var Suite = []*analysis.Analyzer{
	detsim.Analyzer,
	floateq.Analyzer,
	injectortick.Analyzer,
	matindex.Analyzer,
	nakedgoroutine.Analyzer,
	streamsync.Analyzer,
	verifyread.Analyzer,
}
