// Package analyzers registers the abftlint suite: the static passes
// that keep the repository's fault-tolerance invariants machine
// checked. See docs/LINTING.md for the invariant each pass guards and
// the sanctioned //nolint escape hatch.
//
//go:generate go run abftchol/tools/analyzers/gendoc
package analyzers

import (
	"sort"

	"abftchol/tools/analyzers/analysis"
	"abftchol/tools/analyzers/chkflow"
	"abftchol/tools/analyzers/ctxcheck"
	"abftchol/tools/analyzers/detorder"
	"abftchol/tools/analyzers/detsim"
	"abftchol/tools/analyzers/errflow"
	"abftchol/tools/analyzers/floateq"
	"abftchol/tools/analyzers/goleak"
	"abftchol/tools/analyzers/hotpath"
	"abftchol/tools/analyzers/injectortick"
	"abftchol/tools/analyzers/lockcheck"
	"abftchol/tools/analyzers/matindex"
	"abftchol/tools/analyzers/nakedgoroutine"
	"abftchol/tools/analyzers/streamsync"
	"abftchol/tools/analyzers/verifyread"
)

// Version identifies the suite revision in machine-readable output
// (abftlint -json emits it in the header line). Bump it whenever the
// analyzer set, a diagnostic format, or the JSON wire format changes,
// so CI artifact consumers can detect incomparable runs.
const Version = "0.10.0"

// Suite lists every analyzer the abftlint driver runs. The order is
// load-bearing — it fixes the sequence of findings in -json output and
// therefore the CI artifact — so registration is normalized to name
// order at init and pinned by a drift test, keeping the artifact
// stable as analyzers are added.
var Suite = []*analysis.Analyzer{
	chkflow.Analyzer,
	ctxcheck.Analyzer,
	detorder.Analyzer,
	detsim.Analyzer,
	errflow.Analyzer,
	floateq.Analyzer,
	goleak.Analyzer,
	hotpath.Analyzer,
	injectortick.Analyzer,
	lockcheck.Analyzer,
	matindex.Analyzer,
	nakedgoroutine.Analyzer,
	streamsync.Analyzer,
	verifyread.Analyzer,
}

func init() {
	sort.Slice(Suite, func(i, j int) bool { return Suite[i].Name < Suite[j].Name })
}
