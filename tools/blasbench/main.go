// Command blasbench records the BLAS3 hot-path acceptance benchmark:
// sustained GFLOPS for the three kernels the factorization spends its
// time in (Dgemm, Dsyrk, Dtrsm), each measured serial and parallel,
// plain and fused with its ABFT checksum update. The fused numbers are
// the ones the paper's overhead argument rests on — the checksum
// update is O(n²) against the kernel's O(n³), so fused GFLOPS should
// track plain GFLOPS closely and the report makes that visible as
// fused_overhead_percent.
//
// `make bench` runs it; CI archives BENCH_blas.json. Wall-clock timing
// lives here, outside the detsim-clean internal packages, exactly as
// with sweepbench.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"abftchol/internal/blas"
	"abftchol/internal/checksum"
	"abftchol/internal/mat"
)

type kernelResult struct {
	Op      string  `json:"op"`      // dgemm | dsyrk | dtrsm
	Variant string  `json:"variant"` // serial | parallel | fused-serial | fused-parallel
	Flops   float64 `json:"flops"`   // per invocation, data kernel only
	Seconds float64 `json:"best_seconds"`
	GFLOPS  float64 `json:"gflops"`
}

type report struct {
	N          int    `json:"n"`
	K          int    `json:"k"`
	Reps       int    `json:"reps"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`
	GoVersion  string `json:"go_version"`

	Kernels []kernelResult `json:"kernels"`

	// FusedOverheadPercent[op] compares fused-serial against serial:
	// how much of the kernel's throughput the online checksum update
	// costs at this size.
	FusedOverheadPercent map[string]float64 `json:"fused_overhead_percent"`
}

func main() {
	var (
		out  = flag.String("out", "BENCH_blas.json", "write the benchmark report here")
		n    = flag.Int("n", 256, "matrix dimension")
		k    = flag.Int("k", 128, "inner (rank) dimension for gemm/syrk")
		reps = flag.Int("reps", 5, "repetitions; best time is reported")
	)
	flag.Parse()

	r := run(*n, *k, *reps)

	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "blasbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "blasbench:", err)
		os.Exit(1)
	}
	for _, kr := range r.Kernels {
		fmt.Printf("%-7s %-15s %8.3f ms  %6.2f GFLOPS\n", kr.Op, kr.Variant, kr.Seconds*1e3, kr.GFLOPS)
	}
	fmt.Printf("blasbench: wrote %s\n", *out)
}

// best times fn over reps runs and returns the fastest wall clock.
func best(reps int, fn func()) float64 {
	bestT := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		el := time.Since(start).Seconds()
		if i == 0 || el < bestT {
			bestT = el
		}
	}
	return bestT
}

func fill(s []float64, seed int) {
	for i := range s {
		s[i] = float64((i*7+seed)%13)/13 - 0.5
	}
}

func run(n, k, reps int) *report {
	r := &report{
		N:                    n,
		K:                    k,
		Reps:                 reps,
		GOMAXPROCS:           runtime.GOMAXPROCS(0),
		Workers:              blas.Workers,
		GoVersion:            runtime.Version(),
		FusedOverheadPercent: map[string]float64{},
	}

	a := make([]float64, n*k)
	b := make([]float64, n*k)
	c := make([]float64, n*n)
	fill(a, 1)
	fill(b, 2)

	// Checksum slabs for the fused variants: the 2-vector code over
	// the operands, updated online exactly as the factorization does.
	chkC := mat.New(2, n) // checksum of the updated block columns
	chkA := mat.New(2, k) // checksum of the multiplying panel
	panel := mat.FromSlice(n, k, b)
	fill(chkC.Data, 3)
	fill(chkA.Data, 4)

	record := func(op, variant string, flops float64, fn func()) {
		fn() // warm-up: pool, caches, goroutine machinery
		sec := best(reps, fn)
		r.Kernels = append(r.Kernels, kernelResult{
			Op: op, Variant: variant, Flops: flops,
			Seconds: sec, GFLOPS: flops / sec / 1e9,
		})
	}

	// ---- Dgemm: C -= A·Bᵀ, the trailing update's dominant shape.
	gemmFlops := 2 * float64(n) * float64(n) * float64(k)
	record("dgemm", "serial", gemmFlops, func() {
		blas.Dgemm(blas.NoTrans, blas.Trans, n, n, k, -1, a, n, b, n, 1, c, n)
	})
	record("dgemm", "parallel", gemmFlops, func() {
		blas.DgemmParallel(blas.NoTrans, blas.Trans, n, n, k, -1, a, n, b, n, 1, c, n)
	})
	record("dgemm", "fused-serial", gemmFlops, func() {
		blas.Dgemm(blas.NoTrans, blas.Trans, n, n, k, -1, a, n, b, n, 1, c, n)
		checksum.UpdateRankK(chkC, chkA, panel)
	})
	record("dgemm", "fused-parallel", gemmFlops, func() {
		blas.DgemmParallel(blas.NoTrans, blas.Trans, n, n, k, -1, a, n, b, n, 1, c, n)
		checksum.UpdateRankK(chkC, chkA, panel)
	})

	// ---- Dsyrk: C -= A·Aᵀ on the lower triangle (diagonal block update).
	syrkFlops := float64(n) * float64(n+1) * float64(k)
	record("dsyrk", "serial", syrkFlops, func() {
		blas.Dsyrk(n, k, -1, a, n, 1, c, n)
	})
	record("dsyrk", "parallel", syrkFlops, func() {
		blas.DsyrkParallel(n, k, -1, a, n, 1, c, n)
	})
	record("dsyrk", "fused-serial", syrkFlops, func() {
		blas.Dsyrk(n, k, -1, a, n, 1, c, n)
		checksum.UpdateRankK(chkC, chkA, panel)
	})

	// ---- Dtrsm: B·L⁻ᵀ with the factorization's Right/Trans shape.
	// Build a well-conditioned lower triangle in l.
	l := make([]float64, k*k)
	fill(l, 5)
	for j := 0; j < k; j++ {
		l[j+j*k] = float64(k)
		for i := 0; i < j; i++ {
			l[i+j*k] = 0
		}
	}
	bt := make([]float64, n*k)
	fill(bt, 6)
	lm := mat.FromSlice(k, k, l)
	chkB := mat.New(2, k)
	fill(chkB.Data, 7)
	trsmFlops := float64(n) * float64(k) * float64(k)
	record("dtrsm", "serial", trsmFlops, func() {
		blas.Dtrsm(blas.Right, blas.Trans, n, k, 1, l, k, bt, n)
	})
	record("dtrsm", "parallel", trsmFlops, func() {
		blas.DtrsmParallel(blas.Right, blas.Trans, n, k, 1, l, k, bt, n)
	})
	record("dtrsm", "fused-serial", trsmFlops, func() {
		blas.Dtrsm(blas.Right, blas.Trans, n, k, 1, l, k, bt, n)
		checksum.UpdateTRSM(chkB, lm)
	})

	// Fused overhead per op, serial vs fused-serial.
	byKey := map[string]kernelResult{}
	for _, kr := range r.Kernels {
		byKey[kr.Op+"/"+kr.Variant] = kr
	}
	for _, op := range []string{"dgemm", "dsyrk", "dtrsm"} {
		plain, fused := byKey[op+"/serial"], byKey[op+"/fused-serial"]
		if plain.Seconds > 0 {
			r.FusedOverheadPercent[op] = (fused.Seconds - plain.Seconds) / plain.Seconds * 100
		}
	}
	return r
}
