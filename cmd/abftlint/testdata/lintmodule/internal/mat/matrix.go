// Package mat is a miniature of the real matrix container, just deep
// enough for the seeded-bug module to type-check.
package mat

// Matrix is a strided row-major view.
type Matrix struct {
	Rows, Cols, Stride int
	Data               []float64
}

// New allocates a dense matrix.
func New(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Stride: cols, Data: make([]float64, rows*cols)}
}

// Off returns the slice starting at element (i, j).
func (m *Matrix) Off(i, j int) []float64 { return m.Data[i*m.Stride+j:] }

// View returns an r x c window rooted at (i, j) sharing storage.
func (m *Matrix) View(i, j, r, c int) *Matrix {
	return &Matrix{Rows: r, Cols: c, Stride: m.Stride, Data: m.Off(i, j)}
}
