// Package checksum is a miniature of the real encode/update surface.
package checksum

import "abftchol/internal/mat"

// EncodeMatrixMulti builds the m-vector column checksums of a.
func EncodeMatrixMulti(a *mat.Matrix, b, m int) *mat.Matrix {
	return mat.New(m*(a.Rows/b), a.Cols)
}

// UpdatePOTF2 rebuilds a diagonal block's checksum after POTF2.
func UpdatePOTF2(chk, la *mat.Matrix) {}

// UpdateTRSM maintains a panel's checksums through the TRSM solve.
func UpdateTRSM(chk, l *mat.Matrix) {}
