// Package server is a deliberately buggy miniature of the real
// request plane: the handler below mints its own root context instead
// of inheriting the request's — the seeded ctxcheck bug (a client
// disconnect no longer cancels the work done on its behalf).
package server

import (
	"context"
	"net/http"
)

// HandleRun starts a job for the request. The context.Background()
// call is the seeded bug.
func HandleRun(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background()
	if err := runJob(ctx); err != nil {
		http.Error(w, "job failed", http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

func runJob(ctx context.Context) error { return ctx.Err() }
