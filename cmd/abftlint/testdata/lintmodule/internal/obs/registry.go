// Package obs is a deliberately buggy miniature of the real metrics
// registry; the driver test asserts the suite catches each seeded bug.
package obs

import "sync"

// Registry counts events behind a seeded guards association.
type Registry struct {
	mu       sync.Mutex // guards: counters
	counters map[string]int64
}

// New builds an empty registry.
func New() *Registry {
	return &Registry{counters: map[string]int64{}}
}

// Inc is the disciplined path.
func (r *Registry) Inc(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name]++
}

// Reset skips the lock: the seeded lockcheck bug (unguarded write to
// a guarded field).
func (r *Registry) Reset(name string) {
	r.counters[name] = 0
}
