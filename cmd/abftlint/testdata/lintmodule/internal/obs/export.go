package obs

import (
	"encoding/json"
	"io"
)

// Export streams the counters in map iteration order: the seeded
// detorder bug (map-range into a JSON emit without a sort).
func (r *Registry) Export(w io.Writer) error {
	enc := json.NewEncoder(w)
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, v := range r.counters {
		if err := enc.Encode(map[string]int64{name: v}); err != nil {
			return err
		}
	}
	return nil
}
