// Seeded errflow bug: the final-audit rejection sentinel exists, but
// the wrap below uses %v, severing the chain — callers' errors.Is
// tests silently stop matching.
package core

import (
	"errors"
	"fmt"
)

// ErrResultRejected is the final-audit rejection sentinel.
var ErrResultRejected = errors.New("final result rejected")

// finalCheck rejects a result the offline audit failed. The %v verb
// is the seeded bug.
func finalCheck(ok bool) error {
	if ok {
		return nil
	}
	return fmt.Errorf("core: final audit: %v", ErrResultRejected)
}

// Rejected is the predicate the severed chain above breaks.
func Rejected(err error) bool {
	return errors.Is(err, ErrResultRejected)
}

var _ = finalCheck
