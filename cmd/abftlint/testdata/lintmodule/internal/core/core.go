// Package core is a deliberately buggy miniature of the real executor:
// the driver below forgets the TRSM checksum update — the seeded
// chkflow bug (unpaired mutation).
package core

import (
	"abftchol/internal/blas"
	"abftchol/internal/checksum"
	"abftchol/internal/mat"
)

// Scheme selects the fault-tolerance variant.
type Scheme int

// The schemes declare their verification disciplines to the analyzers.
const (
	// SchemeNone runs without checksums.
	//
	// abft:protocol scheme SchemeNone verify=none
	SchemeNone Scheme = iota
	// SchemeOnline verifies each block right after writing it.
	//
	// abft:protocol scheme SchemeOnline ft verify=post-write
	SchemeOnline
)

// FaultTolerant reports whether the scheme maintains checksums.
func (s Scheme) FaultTolerant() bool { return s >= SchemeOnline }

type exec struct {
	sch    Scheme
	a, chk *mat.Matrix
	b, m   int
	nb     int
}

func (e *exec) verifyBlocks(blocks [][2]int) error { return nil }

func (e *exec) encode() {
	e.chk = checksum.EncodeMatrixMulti(e.a, e.b, e.m)
}

func (e *exec) block(bi, bj int) *mat.Matrix {
	return e.a.View(bi*e.b, bj*e.b, e.b, e.b)
}

func (e *exec) chkView(bi, bj int) *mat.Matrix {
	return e.chk.View(e.m*bi, bj*e.b, e.m, e.b)
}

func (e *exec) potf2(j int) error {
	return blas.Dpotf2(e.b, e.a.Off(j*e.b, j*e.b), e.a.Stride)
}

func (e *exec) trsm(j int) {
	blas.DtrsmParallel(blas.Right, blas.Trans, e.b, e.b, 1,
		e.a.Off(j*e.b, j*e.b), e.a.Stride,
		e.a.Off((j+1)*e.b, j*e.b), e.a.Stride)
}

func (e *exec) updPOTF2(j int) {
	checksum.UpdatePOTF2(e.chkView(j, j), e.block(j, j))
}

// updTRSM exists but the driver below never calls it: the panel's
// checksums go stale the moment trsm rewrites it.
func (e *exec) updTRSM(j int) {
	checksum.UpdateTRSM(e.chk.View(e.m*(j+1), j*e.b, e.m, e.b), e.block(j, j))
}

// runOnce factors block column by block column under the post-write
// discipline — except that the TRSM checksum update went missing.
//
// abft:protocol driver steps=potf2,trsm
func (e *exec) runOnce() error {
	sch := e.sch
	ft := sch.FaultTolerant()
	if ft {
		e.encode()
	}
	for j := 0; j < e.nb; j++ {
		if err := e.potf2(j); err != nil {
			return err
		}
		if ft {
			e.updPOTF2(j)
		}
		if sch == SchemeOnline {
			if err := e.verifyBlocks([][2]int{{j, j}}); err != nil {
				return err
			}
		}
		e.trsm(j)
		if sch == SchemeOnline {
			if err := e.verifyBlocks(nil); err != nil {
				return err
			}
		}
	}
	return nil
}
