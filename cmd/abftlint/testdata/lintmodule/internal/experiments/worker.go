// Package experiments is a deliberately buggy miniature of the sweep
// worker pool; the driver test asserts the suite catches the leak.
package experiments

// Fan launches one worker per task and returns without joining any of
// them: the seeded goleak bug (leaked worker goroutine).
func Fan(tasks []func()) {
	for _, task := range tasks {
		go func(task func()) {
			task()
		}(task)
	}
}
