// Package blas is a miniature of the real kernel surface — shape-only
// stubs so the seeded-bug module type-checks without numeric code.
package blas

// Transpose mirrors the real API's enum.
type Transpose int

// Transpose values.
const (
	NoTrans Transpose = iota
	Trans
)

// Side mirrors the real API's enum.
type Side int

// Side values.
const (
	Left Side = iota
	Right
)

// Dpotf2 stands in for the unblocked Cholesky kernel.
func Dpotf2(n int, a []float64, lda int) error { return nil }

// Daxpy is a seeded hotpath bug: the function is annotated as a
// hot-path kernel but allocates a scratch slice on every loop
// iteration — exactly the per-call allocation class the analyzer
// exists to catch.
//
// abft:hotpath
func Daxpy(n int, alpha float64, x, y []float64) {
	for i := 0; i < n; i++ {
		tmp := make([]float64, 1)
		tmp[0] = alpha * x[i]
		y[i] += tmp[0]
	}
}

// DtrsmParallel stands in for the parallel triangular solve.
func DtrsmParallel(side Side, transL Transpose, m, n int, alpha float64, l []float64, ldl int, b []float64, ldb int) {
}
