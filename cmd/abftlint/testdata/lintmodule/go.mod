module abftchol

go 1.22
