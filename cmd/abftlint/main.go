// Command abftlint runs the repository's custom static-analysis suite
// (tools/analyzers) over the packages named on the command line:
//
//	go run ./cmd/abftlint ./...
//
// It exits 0 when the tree is clean, 1 when any analyzer reports a
// finding, and 2 when the packages cannot be loaded or type-checked.
// Intentional violations are suppressed line-by-line with
// //nolint:abftlint (whole suite) or //nolint:<analyzer>, always with
// a trailing justification; see docs/LINTING.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"abftchol/tools/analyzers"
	"abftchol/tools/analyzers/analysis"
)

func main() {
	printVersion := flag.String("V", "", "print version and exit (go vet handshake)")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: abftlint [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the abftchol static-analysis suite; 'abftlint ./...' checks the whole module.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *printVersion != "" {
		// Enough of the vet tool handshake to identify ourselves;
		// abftlint is driven standalone (this module vendors no
		// x/tools, so the full unitchecker protocol is out of reach).
		fmt.Println("abftlint version devel")
		return
	}
	if *list {
		for _, a := range analyzers.Suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(run(patterns))
}

func run(patterns []string) int {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "abftlint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "abftlint:", err)
		return 2
	}
	broken := false
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			fmt.Fprintf(os.Stderr, "abftlint: %s: %v\n", pkg.ImportPath, e)
			broken = true
		}
	}
	if broken {
		return 2
	}
	findings, err := analysis.Run(pkgs, analyzers.Suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "abftlint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "abftlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
