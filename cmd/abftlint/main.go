// Command abftlint runs the repository's custom static-analysis suite
// (tools/analyzers) over the packages named on the command line:
//
//	go run ./cmd/abftlint ./...
//
// It exits 0 when the tree is clean, 1 when any analyzer reports a
// finding, and 2 when the packages cannot be loaded or type-checked.
// Intentional violations are suppressed line-by-line with
// //nolint:abftlint (whole suite) or //nolint:<analyzer>, always with
// a trailing justification; see docs/LINTING.md.
//
// -json emits one JSON object per diagnostic (suppressed ones
// included, marked) for CI artifacts and tooling. -nolint-report
// audits the escape hatches instead of linting: it lists every
// //nolint directive and fails if one carries no justification.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"abftchol/tools/analyzers"
	"abftchol/tools/analyzers/analysis"
)

func main() {
	printVersion := flag.String("V", "", "print version and exit (go vet handshake)")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON object per diagnostic (suppressed findings included) on stdout")
	nolintReport := flag.Bool("nolint-report", false, "audit //nolint directives instead of linting; fail on missing justifications")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: abftlint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the abftchol static-analysis suite; 'abftlint ./...' checks the whole module.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *printVersion != "" {
		// Enough of the vet tool handshake to identify ourselves;
		// abftlint is driven standalone (this module vendors no
		// x/tools, so the full unitchecker protocol is out of reach).
		fmt.Println("abftlint version devel")
		return
	}
	if *list {
		for _, a := range analyzers.Suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if *nolintReport {
		os.Exit(auditNolint(os.Stdout, patterns))
	}
	os.Exit(run(os.Stdout, patterns, *jsonOut))
}

// load resolves the patterns into type-checked packages, or returns
// nil after printing why (the caller exits 2).
func load(patterns []string) []*analysis.Package {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "abftlint:", err)
		return nil
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "abftlint:", err)
		return nil
	}
	broken := false
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			fmt.Fprintf(os.Stderr, "abftlint: %s: %v\n", pkg.ImportPath, e)
			broken = true
		}
	}
	if broken {
		return nil
	}
	return pkgs
}

// jsonHeader is the first line of -json output: it names the suite
// revision that produced the findings, so CI artifact diffs can tell
// a changed tree from a changed toolchain, and carries each analyzer's
// wall time so the artifact doubles as the suite's performance record
// (tools/lintbudget gates the total against a committed baseline).
// Findings follow, one object per line, sorted by (file, line, column,
// analyzer) — the order is deterministic regardless of package load
// order. The timings are the only nondeterministic bytes, and they
// stay confined to this line so a findings diff can skip it.
type jsonHeader struct {
	Suite     string `json:"suite"`
	Version   string `json:"version"`
	Analyzers int    `json:"analyzers"`
	// TimingsMS maps analyzer name → wall milliseconds spent across
	// every package in this run; TotalMS is their sum.
	TimingsMS map[string]float64 `json:"timings_ms,omitempty"`
	TotalMS   float64            `json:"total_ms,omitempty"`
}

// jsonFinding is the one-line-per-diagnostic wire format of -json.
type jsonFinding struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func run(out io.Writer, patterns []string, asJSON bool) int {
	pkgs := load(patterns)
	if pkgs == nil {
		return 2
	}
	findings, timings, err := analysis.RunAllTimed(pkgs, analyzers.Suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "abftlint:", err)
		return 2
	}
	active := 0
	enc := json.NewEncoder(out)
	if asJSON {
		ms := make(map[string]float64, len(timings))
		total := 0.0
		for name, d := range timings {
			v := float64(d.Microseconds()) / 1000
			ms[name] = v
			total += v
		}
		enc.Encode(jsonHeader{
			Suite:     "abftlint",
			Version:   analyzers.Version,
			Analyzers: len(analyzers.Suite),
			TimingsMS: ms,
			TotalMS:   total,
		})
	}
	for _, f := range findings {
		if !f.Suppressed {
			active++
		}
		switch {
		case asJSON:
			enc.Encode(jsonFinding{
				Analyzer:   f.Analyzer.Name,
				File:       f.Pos.Filename,
				Line:       f.Pos.Line,
				Column:     f.Pos.Column,
				Message:    f.Message,
				Suppressed: f.Suppressed,
			})
		case !f.Suppressed:
			fmt.Fprintln(out, f)
		}
	}
	if active > 0 {
		fmt.Fprintf(os.Stderr, "abftlint: %d finding(s)\n", active)
		return 1
	}
	return 0
}

// auditNolint lists every //nolint escape hatch in the packages and
// fails when one carries no justification — an escape without a reason
// is a silent hole in the invariant the suppressed analyzer guards —
// or when one is stale: no analyzer reports anything on its line
// anymore, so the directive outlived the violation it was written for
// and should be deleted before it silences a future, different one.
func auditNolint(out io.Writer, patterns []string) int {
	pkgs := load(patterns)
	if pkgs == nil {
		return 2
	}
	findings, err := analysis.RunAll(pkgs, analyzers.Suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "abftlint:", err)
		return 2
	}
	// Which analyzers actually fired, per annotated line. A directive is
	// live only if it suppresses at least one of them.
	fired := map[string]map[string]bool{}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		if fired[key] == nil {
			fired[key] = map[string]bool{}
		}
		fired[key][f.Analyzer.Name] = true
	}
	unjustified, stale := 0, 0
	for _, d := range analysis.NolintDirectives(pkgs) {
		scope := "suite"
		if !d.All {
			scope = ""
			for i, n := range d.Names {
				if i > 0 {
					scope += ","
				}
				scope += n
			}
		}
		live := false
		onLine := fired[fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)]
		if d.All {
			live = len(onLine) > 0
		} else {
			for _, n := range d.Names {
				if onLine[n] {
					live = true
					break
				}
			}
		}
		just := d.Justification
		if just == "" {
			just = "MISSING JUSTIFICATION"
			unjustified++
		}
		if !live {
			just = "STALE (no analyzer reports here anymore — delete the directive): " + just
			stale++
		}
		fmt.Fprintf(out, "%s:%d: nolint(%s): %s\n", d.Pos.Filename, d.Pos.Line, scope, just)
	}
	if unjustified > 0 {
		fmt.Fprintf(os.Stderr, "abftlint: %d //nolint directive(s) without justification\n", unjustified)
	}
	if stale > 0 {
		fmt.Fprintf(os.Stderr, "abftlint: %d stale //nolint directive(s)\n", stale)
	}
	if unjustified+stale > 0 {
		return 1
	}
	return 0
}
