package main

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"abftchol/tools/analyzers"
)

// TestRepositoryIsClean runs the whole suite over the module exactly
// as CI does; the tree must lint clean (intentional violations carry
// //nolint justifications).
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire module")
	}
	if code := run(io.Discard, []string{"../../..."}, false); code != 0 {
		t.Fatalf("abftlint exited %d on the repository; run 'go run ./cmd/abftlint ./...' for the findings", code)
	}
}

// TestSelfLint runs the suite over its own implementation — the
// analyzers, their framework, and this driver. Linting tools that do
// not survive their own gate are not trustworthy gates.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the tool packages")
	}
	if code := run(io.Discard, []string{"../../tools/...", "../../cmd/..."}, false); code != 0 {
		t.Fatalf("abftlint exited %d on its own implementation", code)
	}
}

// TestJSONOutput checks the -json mode on the analyzer testdata trees:
// the first line must identify the suite revision, every following
// line must be a well-formed diagnostic object in (file, line, column,
// analyzer) order, and the deliberately suppressed findings must
// appear marked rather than vanish.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks testdata packages")
	}
	// The streamsync testdata package contains true positives and one
	// //nolint escape, but it only triggers when loaded in scope — the
	// repository run above proves the tree clean, so drive the JSON
	// path through the repository too and assert shape, not content.
	var sb strings.Builder
	if code := run(&sb, []string{"../../..."}, true); code != 0 {
		t.Fatalf("abftlint -json exited %d on the repository", code)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	if !sc.Scan() {
		t.Fatal("-json emitted no output; want a suite header line")
	}
	var hdr jsonHeader
	if err := json.Unmarshal([]byte(sc.Text()), &hdr); err != nil {
		t.Fatalf("-json first line is not JSON: %q: %v", sc.Text(), err)
	}
	if hdr.Suite != "abftlint" || hdr.Version != analyzers.Version || hdr.Analyzers != len(analyzers.Suite) {
		t.Fatalf("-json header = %+v, want suite abftlint version %s with %d analyzers", hdr, analyzers.Version, len(analyzers.Suite))
	}
	if len(hdr.TimingsMS) != len(analyzers.Suite) {
		t.Fatalf("-json header timings cover %d analyzers, want every one of the %d", len(hdr.TimingsMS), len(analyzers.Suite))
	}
	sum := 0.0
	for _, a := range analyzers.Suite {
		ms, ok := hdr.TimingsMS[a.Name]
		if !ok || ms < 0 {
			t.Errorf("-json header timing for %s = %v ms (present %v), want a non-negative entry", a.Name, ms, ok)
		}
		sum += ms
	}
	if diff := hdr.TotalMS - sum; diff > 0.01 || diff < -0.01 {
		t.Errorf("-json header total_ms = %v, want the per-analyzer sum %v", hdr.TotalMS, sum)
	}
	var prev *jsonFinding
	for sc.Scan() {
		line := sc.Text()
		var f jsonFinding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("-json emitted a non-JSON line %q: %v", line, err)
		}
		if f.Analyzer == "" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("-json diagnostic missing fields: %q", line)
		}
		if !f.Suppressed {
			t.Errorf("repository is clean yet -json emitted an unsuppressed finding: %q", line)
		}
		if prev != nil && findingLess(&f, prev) {
			t.Errorf("-json diagnostics out of (file, line, column, analyzer) order: %s:%d:%d [%s] after %s:%d:%d [%s]",
				f.File, f.Line, f.Column, f.Analyzer, prev.File, prev.Line, prev.Column, prev.Analyzer)
		}
		g := f
		prev = &g
	}
}

// findingLess is the CI artifact order: (file, line, column, analyzer).
func findingLess(a, b *jsonFinding) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	if a.Column != b.Column {
		return a.Column < b.Column
	}
	return a.Analyzer < b.Analyzer
}

// TestDriverOnSeededBugs points the driver at a self-contained fixture
// module carrying one seeded bug per guarded invariant — an unguarded
// write to a guarded field (lockcheck), a leaked worker goroutine
// (goleak), a map-range streamed into a JSON encoder (detorder), a
// driver whose TRSM checksum update went missing (chkflow), a %v wrap
// severing a sentinel chain (errflow), and a handler minting
// context.Background() instead of inheriting the request context
// (ctxcheck) — and asserts the end-to-end pipeline (loader, suite,
// driver formatting, exit code) reports all of them.
func TestDriverOnSeededBugs(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the fixture module")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir("testdata/lintmodule"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	var sb strings.Builder
	if code := run(&sb, []string{"./..."}, false); code != 1 {
		t.Fatalf("driver exited %d on the seeded-bug module, want 1; output:\n%s", code, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"[lockcheck]", "[goleak]", "[detorder]", "[chkflow]", "[hotpath]", "[errflow]", "[ctxcheck]"} {
		if !strings.Contains(out, want) {
			t.Errorf("driver output carries no %s finding on the seeded bug:\n%s", want, out)
		}
	}
}

// TestNolintReport audits the repository's escape hatches: the mode
// must list each directive and pass only while every one carries a
// justification.
func TestNolintReport(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire module")
	}
	var sb strings.Builder
	if code := auditNolint(&sb, []string{"../../internal/..."}); code != 0 {
		t.Fatalf("abftlint -nolint-report exited %d:\n%s", code, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "nolint(") {
		t.Fatalf("-nolint-report listed no directives; internal/ carries known escapes:\n%s", out)
	}
	if strings.Contains(out, "MISSING JUSTIFICATION") {
		t.Fatalf("-nolint-report found unjustified escapes yet exited 0:\n%s", out)
	}
}
