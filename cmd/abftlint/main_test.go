package main

import "testing"

// TestRepositoryIsClean runs the whole suite over the module exactly
// as CI does; the tree must lint clean (intentional violations carry
// //nolint justifications).
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire module")
	}
	if code := run([]string{"../../..."}); code != 0 {
		t.Fatalf("abftlint exited %d on the repository; run 'go run ./cmd/abftlint ./...' for the findings", code)
	}
}
