package main

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

// TestRepositoryIsClean runs the whole suite over the module exactly
// as CI does; the tree must lint clean (intentional violations carry
// //nolint justifications).
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire module")
	}
	if code := run(io.Discard, []string{"../../..."}, false); code != 0 {
		t.Fatalf("abftlint exited %d on the repository; run 'go run ./cmd/abftlint ./...' for the findings", code)
	}
}

// TestSelfLint runs the suite over its own implementation — the
// analyzers, their framework, and this driver. Linting tools that do
// not survive their own gate are not trustworthy gates.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the tool packages")
	}
	if code := run(io.Discard, []string{"../../tools/...", "../../cmd/..."}, false); code != 0 {
		t.Fatalf("abftlint exited %d on its own implementation", code)
	}
}

// TestJSONOutput checks the -json mode on the analyzer testdata trees:
// every line must be a well-formed diagnostic object, and the
// deliberately suppressed findings must appear marked rather than
// vanish.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks testdata packages")
	}
	// The streamsync testdata package contains true positives and one
	// //nolint escape, but it only triggers when loaded in scope — the
	// repository run above proves the tree clean, so drive the JSON
	// path through the repository too and assert shape, not content.
	var sb strings.Builder
	if code := run(&sb, []string{"../../..."}, true); code != 0 {
		t.Fatalf("abftlint -json exited %d on the repository", code)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		line := sc.Text()
		var f jsonFinding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("-json emitted a non-JSON line %q: %v", line, err)
		}
		if f.Analyzer == "" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("-json diagnostic missing fields: %q", line)
		}
		if !f.Suppressed {
			t.Errorf("repository is clean yet -json emitted an unsuppressed finding: %q", line)
		}
	}
}

// TestDriverOnSeededBugs points the driver at a self-contained fixture
// module carrying one seeded bug per concurrency/determinism analyzer
// — an unguarded write to a guarded field (lockcheck), a leaked worker
// goroutine (goleak), and a map-range streamed into a JSON encoder
// (detorder) — and asserts the end-to-end pipeline (loader, suite,
// driver formatting, exit code) reports all three.
func TestDriverOnSeededBugs(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the fixture module")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir("testdata/lintmodule"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	var sb strings.Builder
	if code := run(&sb, []string{"./..."}, false); code != 1 {
		t.Fatalf("driver exited %d on the seeded-bug module, want 1; output:\n%s", code, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"[lockcheck]", "[goleak]", "[detorder]"} {
		if !strings.Contains(out, want) {
			t.Errorf("driver output carries no %s finding on the seeded bug:\n%s", want, out)
		}
	}
}

// TestNolintReport audits the repository's escape hatches: the mode
// must list each directive and pass only while every one carries a
// justification.
func TestNolintReport(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire module")
	}
	var sb strings.Builder
	if code := auditNolint(&sb, []string{"../../internal/..."}); code != 0 {
		t.Fatalf("abftlint -nolint-report exited %d:\n%s", code, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "nolint(") {
		t.Fatalf("-nolint-report listed no directives; internal/ carries known escapes:\n%s", out)
	}
	if strings.Contains(out, "MISSING JUSTIFICATION") {
		t.Fatalf("-nolint-report found unjustified escapes yet exited 0:\n%s", out)
	}
}
