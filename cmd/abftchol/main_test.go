package main

import (
	"os"
	"testing"

	"abftchol/internal/core"
	"abftchol/internal/fault"
)

// silence routes the command's stdout to /dev/null for the duration of
// a test: the CLI paths print their results, and that output would
// otherwise pollute `go test -bench` logs.
func silence(t *testing.T) {
	t.Helper()
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	saved := os.Stdout
	os.Stdout = devNull
	t.Cleanup(func() {
		os.Stdout = saved
		devNull.Close()
	})
}

func TestParseScheme(t *testing.T) {
	cases := map[string]core.Scheme{
		"magma":    core.SchemeNone,
		"none":     core.SchemeNone,
		"CULA":     core.SchemeCULA,
		"offline":  core.SchemeOffline,
		"online":   core.SchemeOnline,
		"Enhanced": core.SchemeEnhanced,
		"scrub":    core.SchemeOnlineScrub,
	}
	for in, want := range cases {
		got, err := parseScheme(in)
		if err != nil || got != want {
			t.Fatalf("parseScheme(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseScheme("nope"); err == nil {
		t.Fatal("bad scheme accepted")
	}
}

func TestParsePlacement(t *testing.T) {
	cases := map[string]core.Placement{
		"auto": core.PlaceAuto, "cpu": core.PlaceCPU,
		"GPU": core.PlaceGPU, "inline": core.PlaceInline,
	}
	for in, want := range cases {
		got, err := parsePlacement(in)
		if err != nil || got != want {
			t.Fatalf("parsePlacement(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parsePlacement("moon"); err == nil {
		t.Fatal("bad placement accepted")
	}
}

func TestParseInjections(t *testing.T) {
	scs, err := parseInjections("storage@4, computation@7", 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 {
		t.Fatalf("parsed %d scenarios", len(scs))
	}
	if scs[0].Kind != fault.Storage || scs[0].Iter != 4 || scs[0].Delta != 2.5 {
		t.Fatalf("first scenario %+v", scs[0])
	}
	if scs[1].Kind != fault.Computation || scs[1].Iter != 7 {
		t.Fatalf("second scenario %+v", scs[1])
	}
	// Aliases.
	scs, err = parseInjections("memory@2,compute@3", 1)
	if err != nil || scs[0].Kind != fault.Storage || scs[1].Kind != fault.Computation {
		t.Fatalf("aliases: %v %v", scs, err)
	}
	// Empty spec.
	if scs, err := parseInjections("", 1); err != nil || scs != nil {
		t.Fatal("empty spec must parse to nothing")
	}
	// Malformed inputs.
	for _, bad := range []string{"storage", "storage@x", "bogus@3", "@4"} {
		if _, err := parseInjections(bad, 1); err == nil {
			t.Fatalf("malformed %q accepted", bad)
		}
	}
}

func TestRunExperimentsModes(t *testing.T) {
	silence(t)
	// Exercise every rendering mode against one cheap experiment. The
	// output goes to stdout; correctness of the content is covered by
	// the experiments package — here we only assert the paths run.
	for _, mode := range []struct{ csv, plot, json bool }{
		{false, false, false},
		{true, false, false},
		{false, true, false},
		{false, false, true},
	} {
		if err := runExperiments("fig12", mode.csv, true, mode.plot, mode.json); err != nil {
			t.Fatalf("mode %+v: %v", mode, err)
		}
	}
	if err := runExperiments("table7", false, true, false, true); err != nil {
		t.Fatal(err)
	}
	if err := runExperiments("nope", false, true, false, false); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunOneRealWithEverything(t *testing.T) {
	silence(t)
	cfg := runCfg{
		machine: "laptop", scheme: "scrub", place: "cpu", variant: "right",
		n: 128, k: 2, vectors: 4, real: true, trace: true,
		inject: "storage@2", delta: 1e4, seed: 5, opt1: true,
	}
	if err := runOne(cfg); err != nil {
		t.Fatalf("full-feature run failed: %v", err)
	}
}

func TestRunOneValidation(t *testing.T) {
	silence(t)
	base := runCfg{machine: "laptop", scheme: "enhanced", place: "auto", variant: "left", n: 64, k: 1, vectors: 2}
	bad := base
	bad.machine = "nope"
	if err := runOne(bad); err == nil {
		t.Fatal("bad machine accepted")
	}
	bad = base
	bad.variant = "diagonal"
	if err := runOne(bad); err == nil {
		t.Fatal("bad variant accepted")
	}
	bad = base
	bad.real = true
	bad.n = 8192
	if err := runOne(bad); err == nil {
		t.Fatal("huge -real accepted")
	}
	bad = base
	bad.trace = true
	bad.n = 4096 // 128 blocks on laptop: too many rows for a gantt
	if err := runOne(bad); err == nil {
		t.Fatal("huge -trace accepted")
	}
	// And a good one end to end (model plane, tiny).
	if err := runOne(base); err != nil {
		t.Fatalf("valid run failed: %v", err)
	}
}
