package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"abftchol/internal/core"
	"abftchol/internal/experiments"
	"abftchol/internal/fault"
	"abftchol/internal/obs"
)

// silence routes the command's stdout to /dev/null for the duration of
// a test: the CLI paths print their results, and that output would
// otherwise pollute `go test -bench` logs.
func silence(t *testing.T) {
	t.Helper()
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	saved := os.Stdout
	os.Stdout = devNull
	t.Cleanup(func() {
		os.Stdout = saved
		devNull.Close()
	})
}

// testSched builds a fresh serial scheduler with no disk cache: the
// configuration every pre-scheduler test implicitly ran under.
func testSched() *experiments.Scheduler { return experiments.NewScheduler(1, nil) }

func TestParseScheme(t *testing.T) {
	cases := map[string]core.Scheme{
		"magma":    core.SchemeNone,
		"none":     core.SchemeNone,
		"CULA":     core.SchemeCULA,
		"offline":  core.SchemeOffline,
		"online":   core.SchemeOnline,
		"Enhanced": core.SchemeEnhanced,
		"scrub":    core.SchemeOnlineScrub,
	}
	for in, want := range cases {
		got, err := parseScheme(in)
		if err != nil || got != want {
			t.Fatalf("parseScheme(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseScheme("nope"); err == nil {
		t.Fatal("bad scheme accepted")
	}
}

func TestParsePlacement(t *testing.T) {
	cases := map[string]core.Placement{
		"auto": core.PlaceAuto, "cpu": core.PlaceCPU,
		"GPU": core.PlaceGPU, "inline": core.PlaceInline,
	}
	for in, want := range cases {
		got, err := parsePlacement(in)
		if err != nil || got != want {
			t.Fatalf("parsePlacement(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parsePlacement("moon"); err == nil {
		t.Fatal("bad placement accepted")
	}
}

func TestParseInjections(t *testing.T) {
	scs, err := parseInjections("storage@4, computation@7", 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 {
		t.Fatalf("parsed %d scenarios", len(scs))
	}
	if scs[0].Kind != fault.Storage || scs[0].Iter != 4 || scs[0].Delta != 2.5 {
		t.Fatalf("first scenario %+v", scs[0])
	}
	if scs[1].Kind != fault.Computation || scs[1].Iter != 7 {
		t.Fatalf("second scenario %+v", scs[1])
	}
	// Aliases.
	scs, err = parseInjections("memory@2,compute@3", 1)
	if err != nil || scs[0].Kind != fault.Storage || scs[1].Kind != fault.Computation {
		t.Fatalf("aliases: %v %v", scs, err)
	}
	// Empty spec.
	if scs, err := parseInjections("", 1); err != nil || scs != nil {
		t.Fatal("empty spec must parse to nothing")
	}
	// Malformed inputs.
	for _, bad := range []string{"storage", "storage@x", "bogus@3", "@4"} {
		if _, err := parseInjections(bad, 1); err == nil {
			t.Fatalf("malformed %q accepted", bad)
		}
	}
}

func TestRunExperimentsModes(t *testing.T) {
	silence(t)
	// Exercise every rendering mode against one cheap experiment. The
	// output goes to stdout; correctness of the content is covered by
	// the experiments package — here we only assert the paths run.
	for _, mode := range []struct{ csv, plot, json bool }{
		{false, false, false},
		{true, false, false},
		{false, true, false},
		{false, false, true},
	} {
		if err := runExperiments("fig12", mode.csv, true, mode.plot, mode.json, obsCfg{}, testSched()); err != nil {
			t.Fatalf("mode %+v: %v", mode, err)
		}
	}
	if err := runExperiments("table7", false, true, false, true, obsCfg{}, testSched()); err != nil {
		t.Fatal(err)
	}
	if err := runExperiments("nope", false, true, false, false, obsCfg{}, testSched()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunOneRealWithEverything(t *testing.T) {
	silence(t)
	cfg := runCfg{
		machine: "laptop", scheme: "scrub", place: "cpu", variant: "right",
		n: 128, k: 2, vectors: 4, real: true, trace: true,
		inject: "storage@2", delta: 1e4, seed: 5, opt1: true,
	}
	if err := runOne(cfg, obsCfg{}, testSched()); err != nil {
		t.Fatalf("full-feature run failed: %v", err)
	}
}

func TestRunOneValidation(t *testing.T) {
	silence(t)
	base := runCfg{machine: "laptop", scheme: "enhanced", place: "auto", variant: "left", n: 64, k: 1, vectors: 2}
	bad := base
	bad.machine = "nope"
	if err := runOne(bad, obsCfg{}, testSched()); err == nil {
		t.Fatal("bad machine accepted")
	}
	bad = base
	bad.variant = "diagonal"
	if err := runOne(bad, obsCfg{}, testSched()); err == nil {
		t.Fatal("bad variant accepted")
	}
	bad = base
	bad.real = true
	bad.n = 8192
	if err := runOne(bad, obsCfg{}, testSched()); err == nil {
		t.Fatal("huge -real accepted")
	}
	bad = base
	bad.trace = true
	bad.n = 4096 // 128 blocks on laptop: too many rows for a gantt
	if err := runOne(bad, obsCfg{}, testSched()); err == nil {
		t.Fatal("huge -trace accepted")
	}
	// And a good one end to end (model plane, tiny).
	if err := runOne(base, obsCfg{}, testSched()); err != nil {
		t.Fatalf("valid run failed: %v", err)
	}
}

func TestObsOutputFlags(t *testing.T) {
	silence(t)
	dir := t.TempDir()
	oc := obsCfg{
		traceOut:   filepath.Join(dir, "trace.json"),
		metricsOut: filepath.Join(dir, "metrics.json"),
	}

	// -run mode: both artifacts appear and are well formed.
	base := runCfg{machine: "laptop", scheme: "enhanced", place: "auto", variant: "left", n: 256, k: 1, vectors: 2, opt1: true}
	if err := runOne(base, oc, testSched()); err != nil {
		t.Fatal(err)
	}
	traceData, err := os.ReadFile(oc.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateChromeTrace(traceData); err != nil {
		t.Errorf("-run trace output invalid: %v", err)
	}
	checkMetricsFile(t, oc.metricsOut, 1)

	// .jsonl extension selects the compact form: every line is JSON.
	oc2 := obsCfg{traceOut: filepath.Join(dir, "trace.jsonl")}
	if err := runOne(base, oc2, testSched()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(oc2.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("jsonl line %d is not valid JSON: %q", i, line)
		}
	}

	// -exp mode: the sweep accumulates into one snapshot and retains
	// the last run's trace.
	oc3 := obsCfg{
		traceOut:   filepath.Join(dir, "fig12.json"),
		metricsOut: filepath.Join(dir, "fig12-metrics.json"),
	}
	if err := runExperiments("fig12", false, true, false, false, oc3, testSched()); err != nil {
		t.Fatal(err)
	}
	traceData, err = os.ReadFile(oc3.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateChromeTrace(traceData); err != nil {
		t.Errorf("-exp trace output invalid: %v", err)
	}
	// fig12 (quick): 2 sizes x (1 baseline + 3 K settings).
	checkMetricsFile(t, oc3.metricsOut, 8)
}

// checkMetricsFile parses a written snapshot and asserts its run count.
func checkMetricsFile(t *testing.T, path string, wantRuns int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("%s is not valid JSON: %v", path, err)
	}
	if got := snap.Counters["run.count"]; got != wantRuns {
		t.Errorf("%s: run.count = %d, want %d", path, got, wantRuns)
	}
}

func TestStartProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.out")
	stop, err := startProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("profile file missing or empty: %v", err)
	}
	// Empty path is a no-op.
	stop, err = startProfile("")
	if err != nil {
		t.Fatal(err)
	}
	stop()
}
