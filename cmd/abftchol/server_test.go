package main

import (
	"context"
	"io"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"abftchol/internal/experiments"
	"abftchol/internal/server"
)

// captureRun renders one -run invocation and returns its stdout.
func captureRun(t *testing.T, cfg runCfg, sched *experiments.Scheduler) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	saved := os.Stdout
	os.Stdout = w
	runErr := runOne(cfg, obsCfg{}, sched)
	w.Close()
	os.Stdout = saved
	data, readErr := io.ReadAll(r)
	r.Close()
	if runErr != nil {
		t.Fatalf("runOne: %v", runErr)
	}
	if readErr != nil {
		t.Fatal(readErr)
	}
	return string(data)
}

// testDaemon boots an in-process abftd equivalent and returns its base
// URL.
func testDaemon(t *testing.T) string {
	t.Helper()
	srv, err := server.New(server.Config{
		Workers: 2,
		Clock:   server.Clock{Now: time.Now, After: time.After},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("daemon shutdown: %v", err)
		}
		ts.Close()
	})
	return ts.URL
}

// TestRunOneRemoteMatchesLocal is the CLI half of the differential
// satellite: `-run` against a daemon renders byte-identical output to
// the same flags run locally.
func TestRunOneRemoteMatchesLocal(t *testing.T) {
	cfg := runCfg{
		machine: "laptop", scheme: "enhanced", place: "auto", variant: "left",
		n: 512, k: 2, vectors: 2, opt1: true, inject: "storage@3", delta: 1e5,
	}
	local := captureRun(t, cfg, testSched())
	remote := captureRun(t, cfg, newSched(testDaemon(t), 1, nil))
	if local != remote {
		t.Fatalf("-server output drifted from local:\nlocal:\n%s\nremote:\n%s", local, remote)
	}
	if local == "" {
		t.Fatal("no output captured")
	}
}

// TestExperimentRemoteMatchesLocal runs a whole quick experiment
// through the remote scheduler: the replay engine assembles the same
// bytes from daemon-served results.
func TestExperimentRemoteMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("remote sweep is a few hundred points")
	}
	render := func(sched *experiments.Scheduler) string {
		t.Helper()
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		saved := os.Stdout
		os.Stdout = w
		runErr := runExperiments("fig12", false, true, false, false, obsCfg{}, sched)
		w.Close()
		os.Stdout = saved
		data, _ := io.ReadAll(r)
		r.Close()
		if runErr != nil {
			t.Fatalf("runExperiments: %v", runErr)
		}
		return string(data)
	}
	local := render(testSched())
	remote := render(newSched(testDaemon(t), 4, nil))
	if local != remote {
		t.Fatalf("-exp output drifted local vs remote:\nlocal:\n%s\nremote:\n%s", local, remote)
	}
}

func TestCheckRemoteFlags(t *testing.T) {
	if err := checkRemoteFlags("", "", false, false, false); err != nil {
		t.Fatalf("plain -server rejected: %v", err)
	}
	for _, bad := range []struct {
		name                       string
		traceOut, metricsOut       string
		useCache, realData, traceF bool
	}{
		{name: "trace-out", traceOut: "x.json"},
		{name: "metrics-out", metricsOut: "m.json"},
		{name: "cache", useCache: true},
		{name: "real", realData: true},
		{name: "trace", traceF: true},
	} {
		if err := checkRemoteFlags(bad.traceOut, bad.metricsOut, bad.useCache, bad.realData, bad.traceF); err == nil {
			t.Errorf("-server with -%s accepted", bad.name)
		}
	}
}
