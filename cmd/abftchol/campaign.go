package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"abftchol/internal/experiments"
	"abftchol/internal/reliability/campaign"
	"abftchol/internal/server"
)

// campaignArgs bundles the -campaign mode's flags. The grid axes get
// their own flags; the per-trial knobs reuse the -run/-choose-k
// spellings (-n, -k, -vectors, -rate, -delta, -seed), and set records
// which of those the user spelled explicitly so untouched flags fall
// through to campaign.Config defaults instead of the -run defaults.
type campaignArgs struct {
	machines, schemes, classes string
	dir, out                   string
	trials, shardTrials        int
	n, k, vectors              int
	rate, delta                float64
	seed                       int64
	set                        map[string]bool
	server                     string
	workers                    int
}

// runCampaign executes (or resumes) a reliability campaign. Local runs
// journal per shard under -campaign-dir, keyed by the campaign
// fingerprint, so a killed run resumes where it stopped and produces
// bytes identical to an uninterrupted one. With -server the whole
// campaign runs on the daemon (which dedups identical configs); the
// report bytes are identical either way.
func runCampaign(a campaignArgs) error {
	cfg := campaign.Config{
		Machines: splitList(a.machines),
		Schemes:  splitList(a.schemes),
		Classes:  splitList(a.classes),
	}
	if a.set["n"] {
		cfg.N = a.n
	}
	if a.set["k"] {
		cfg.K = a.k
	}
	if a.set["vectors"] {
		cfg.ChecksumVectors = a.vectors
	}
	if a.set["rate"] {
		cfg.RatePerIteration = a.rate
	}
	if a.set["delta"] {
		cfg.Delta = a.delta
	}
	if a.set["seed"] {
		cfg.Seed = a.seed
	}
	cfg.TrialsPerCell = a.trials
	cfg.ShardTrials = a.shardTrials
	cfg, err := cfg.Normalize()
	if err != nil {
		return err
	}

	var data []byte
	if a.server != "" {
		addr := a.server
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		cl := &server.Client{Base: strings.TrimRight(addr, "/"), Name: "abftchol"}
		if data, err = cl.RunCampaign(cfg); err != nil {
			return err
		}
	} else {
		opts := campaign.RunOptions{Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "abftchol: "+format+"\n", args...)
		}}
		if a.dir != "" {
			fp, err := cfg.Fingerprint()
			if err != nil {
				return err
			}
			opts.JournalPath = filepath.Join(a.dir, fp[:16]+".jsonl")
		}
		rep, err := campaign.Run(context.Background(), cfg, experiments.NewScheduler(a.workers, nil), opts)
		if err != nil {
			return err
		}
		if data, err = rep.Marshal(); err != nil {
			return err
		}
	}
	if a.out != "" {
		return os.WriteFile(a.out, data, 0o644)
	}
	_, err = os.Stdout.Write(data)
	return err
}

// splitList turns a comma-separated flag value into its elements,
// dropping empty entries; "" means "use the default axis".
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
