package main

import (
	"fmt"
	"os"
	"runtime/pprof"

	"abftchol/internal/experiments"
	"abftchol/internal/hetsim"
	"abftchol/internal/obs"
)

// obsCfg bundles the observability output flags shared by -run and
// -exp: where to write the timeline and the metrics snapshot.
type obsCfg struct {
	traceOut, metricsOut string
}

func (c obsCfg) active() bool { return c.traceOut != "" || c.metricsOut != "" }

// sink builds the experiments-mode collector, or nil when no output
// was requested.
func (c obsCfg) sink() *experiments.Obs {
	if !c.active() {
		return nil
	}
	s := &experiments.Obs{CaptureTrace: c.traceOut != ""}
	if c.metricsOut != "" {
		s.Metrics = obs.NewRegistry()
	}
	return s
}

// writeMetrics snapshots reg to the -metrics-out path.
func (c obsCfg) writeMetrics(reg *obs.Registry) error {
	if c.metricsOut == "" || reg == nil {
		return nil
	}
	snap, err := reg.Snapshot()
	if err != nil {
		return err
	}
	return os.WriteFile(c.metricsOut, snap, 0o644)
}

// writeTrace exports tr to the -trace-out path, choosing the format
// from the file extension (.jsonl for the compact line form, anything
// else for Chrome trace-event JSON).
func (c obsCfg) writeTrace(tr *hetsim.Trace, meta map[string]string) error {
	if c.traceOut == "" {
		return nil
	}
	if tr == nil {
		return fmt.Errorf("-trace-out: no timeline was captured")
	}
	f, err := os.Create(c.traceOut)
	if err != nil {
		return err
	}
	if obs.TraceFormatForPath(c.traceOut) == "jsonl" {
		err = obs.WriteJSONL(f, tr)
	} else {
		err = obs.WriteChromeTrace(f, tr, meta)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// flush writes whatever the experiments sink collected.
func (c obsCfg) flush(s *experiments.Obs, expID string) error {
	if s == nil {
		return nil
	}
	if err := c.writeMetrics(s.Metrics); err != nil {
		return err
	}
	if c.traceOut == "" {
		return nil
	}
	tr, label := s.LastTrace()
	return c.writeTrace(tr, map[string]string{
		"tool":       "abftchol",
		"experiment": expID,
		"run":        label,
	})
}

// startProfile begins a CPU profile of the tool itself (-pprof) and
// returns the function that finishes it.
func startProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}
