package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"abftchol/internal/experiments"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/ from the current output")

// captureStdout runs fn with os.Stdout redirected into a buffer.
func captureStdout(t *testing.T, fn func() error) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	saved := os.Stdout
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		data, _ := io.ReadAll(r)
		done <- data
	}()
	ferr := fn()
	os.Stdout = saved
	w.Close()
	data := <-done
	r.Close()
	if ferr != nil {
		t.Fatalf("command failed: %v", ferr)
	}
	return data
}

// TestGoldenExpAllQuick pins the full `-exp all -quick` output in every
// machine-readable form. The simulator is deterministic and the sweep
// engine reassembles results in declared order, so these bytes must
// never change unless the model itself does — in which case rerun with
// `go test ./cmd/abftchol -run TestGolden -update` and review the diff
// like any other code change.
func TestGoldenExpAllQuick(t *testing.T) {
	cases := []struct {
		name          string
		csv, jsonMode bool
	}{
		{"all-quick.txt", false, false},
		{"all-quick.csv", true, false},
		{"all-quick.json", false, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := captureStdout(t, func() error {
				// A fresh serial scheduler per format: golden bytes must
				// not depend on memo state left by another format's run
				// (they don't — this keeps each subtest independent).
				return runExperiments("all", c.csv, true, false, c.jsonMode, obsCfg{}, testSched())
			})
			path := filepath.Join("testdata", c.name)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./cmd/abftchol -run TestGolden -update` to create it)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s drifted from the golden file (rerun with -update if the change is intended)\n%s",
					c.name, diffHint(want, got))
			}
		})
	}
}

// TestGoldenMatchesParallelAndCache re-renders the text form through a
// wide worker pool and a cold+warm cache and holds both to the same
// golden bytes: the CLI-level differential check.
func TestGoldenMatchesParallelAndCache(t *testing.T) {
	path := filepath.Join("testdata", "all-quick.txt")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Skipf("golden file missing (%v); TestGoldenExpAllQuick creates it", err)
	}
	parallel := captureStdout(t, func() error {
		return runExperiments("all", false, true, false, false, obsCfg{}, schedWith(8, ""))
	})
	if !bytes.Equal(parallel, want) {
		t.Errorf("-parallel 8 output drifted from the golden file\n%s", diffHint(want, parallel))
	}
	dir := t.TempDir()
	cold := captureStdout(t, func() error {
		return runExperiments("all", false, true, false, false, obsCfg{}, schedWith(4, dir))
	})
	if !bytes.Equal(cold, want) {
		t.Errorf("cold-cache output drifted from the golden file\n%s", diffHint(want, cold))
	}
	warm := captureStdout(t, func() error {
		return runExperiments("all", false, true, false, false, obsCfg{}, schedWith(4, dir))
	})
	if !bytes.Equal(warm, want) {
		t.Errorf("warm-cache output drifted from the golden file\n%s", diffHint(want, warm))
	}
}

// schedWith builds a scheduler with an optional disk cache rooted at
// dir ("" for none).
func schedWith(workers int, dir string) *experiments.Scheduler {
	var cache *experiments.Cache
	if dir != "" {
		cache = experiments.NewCache(dir)
	}
	return experiments.NewScheduler(workers, cache)
}

// diffHint locates the first diverging line for a readable failure.
func diffHint(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first difference at line %d:\n  golden: %q\n  got:    %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: golden %d, got %d", len(wl), len(gl))
}
