// Command abftchol runs the reproduction's experiments and individual
// factorizations from the command line.
//
// Regenerate the paper's evaluation (Tables VII-VIII, Figures 8-17):
//
//	abftchol -exp all            # everything (a few minutes)
//	abftchol -exp table7         # one experiment
//	abftchol -exp fig14 -csv     # machine-readable output
//	abftchol -exp fig9 -quick    # shortened sweep
//	abftchol -list               # available experiment IDs
//
// Run a single factorization and report timing and fault handling:
//
//	abftchol -run -machine tardis -n 20480 -scheme enhanced -k 3
//	abftchol -run -machine laptop -n 512 -scheme online -real \
//	         -inject storage@4 -delta 1e5
//
// Sweeps run through a deduplicating scheduler; a worker pool and an
// on-disk result cache are opt-in and never change the output bytes:
//
//	abftchol -exp all -parallel 8          # bounded worker pool
//	abftchol -exp all -cache               # memoize under artifacts/cache/
//
// Run a fault-injection reliability campaign (coverage rates with
// Wilson confidence intervals; see docs/RELIABILITY.md):
//
//	abftchol -campaign                     # default grid, journaled under artifacts/campaign/
//	abftchol -campaign -schemes online,enhanced -trials 1000 -out report.json
//	abftchol -campaign -server :8787       # execute on a running abftd daemon
//
// Export observability artifacts (see docs/OBSERVABILITY.md):
//
//	abftchol -exp fig8 -quick -trace-out fig8.json -metrics-out fig8-metrics.json
//	abftchol -run -n 5120 -scheme enhanced -trace-out run.jsonl -pprof cpu.out
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"abftchol/internal/core"
	"abftchol/internal/experiments"
	"abftchol/internal/hetsim"
	"abftchol/internal/mat"
	"abftchol/internal/obs"
	"abftchol/internal/reliability"
	"abftchol/internal/server"
)

func main() {
	var (
		expID   = flag.String("exp", "", "experiment to regenerate (table7, table8, fig8..fig17, or 'all')")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		quick   = flag.Bool("quick", false, "shortened sweep (two sizes) for a fast look")
		plot    = flag.Bool("plot", false, "render figures as ASCII charts instead of tables")
		jsonOut = flag.Bool("json", false, "emit JSON instead of aligned text")
		chooseK = flag.Bool("choose-k", false, "tune the verification interval K for -machine/-n at -rate")
		rate    = flag.Float64("rate", 0.05, "assumed storage errors per iteration (-choose-k)")
		fit     = flag.Float64("fit", 0, "derive -rate from a FIT/Mbit soft-error rate instead (-choose-k)")
		doRun   = flag.Bool("run", false, "run one factorization instead of an experiment")
		machine = flag.String("machine", "tardis", "machine profile: tardis, bulldozer64, laptop")
		n       = flag.Int("n", 10240, "matrix size (multiple of the profile block size)")
		scheme  = flag.String("scheme", "enhanced", "magma, cula, offline, online, enhanced, scrub")
		k       = flag.Int("k", 1, "verification interval K (Optimization 3)")
		noOpt1  = flag.Bool("no-opt1", false, "disable concurrent checksum recalculation")
		place   = flag.String("placement", "auto", "checksum update placement: auto, cpu, gpu, inline")
		real    = flag.Bool("real", false, "run with real float64 data (small n only)")
		inject  = flag.String("inject", "", "comma-separated errors, e.g. storage@4,computation@7")
		delta   = flag.Float64("delta", 1e5, "injected error magnitude")
		seed    = flag.Int64("seed", 42, "seed for the generated SPD input (-real)")
		trace   = flag.Bool("trace", false, "render an ASCII timeline of the run (-run, small n)")
		variant = flag.String("variant", "left", "blocked formulation: left (paper) or right (ablation)")
		vectors = flag.Int("vectors", 2, "checksum vectors per block (2 = paper; 4 corrects 2 errors/column)")

		traceOut   = flag.String("trace-out", "", "write the run's timeline here (.json Chrome/Perfetto, .jsonl compact); with -exp, the last run's")
		metricsOut = flag.String("metrics-out", "", "write a JSON metrics snapshot accumulated over the run(s) here")
		pprofOut   = flag.String("pprof", "", "write a CPU profile of the tool itself here")

		campaignMode = flag.Bool("campaign", false, "run a fault-injection reliability campaign over a (machine x scheme x class) grid (docs/RELIABILITY.md)")
		campMachines = flag.String("machines", "", "comma-separated machine profiles for -campaign (default laptop)")
		campSchemes  = flag.String("schemes", "", "comma-separated schemes for -campaign (default magma,online,enhanced)")
		campClasses  = flag.String("classes", "", "comma-separated fault classes for -campaign (default the paper's storage/compute/burst set)")
		campTrials   = flag.Int("trials", 0, "fault-injection trials per grid cell for -campaign (default 200)")
		campShard    = flag.Int("shard-trials", 0, "trials per journaled shard for -campaign (default 50)")
		campDir      = flag.String("campaign-dir", "artifacts/campaign", "journal directory for -campaign checkpoint/resume; empty disables journaling (local runs only)")
		campOut      = flag.String("out", "", "write the -campaign report to this file instead of stdout")

		parallel = flag.Int("parallel", 0, "sweep worker pool size; 0 = GOMAXPROCS, 1 = serial (output is byte-identical either way)")
		useCache = flag.Bool("cache", false, "memoize model-plane results in an on-disk cache (see -cache-dir)")
		cacheDir = flag.String("cache-dir", "artifacts/cache", "result cache location used by -cache")
		srvAddr  = flag.String("server", "", "submit -run/-exp points to a running abftd daemon at this address instead of executing locally (docs/SERVICE.md)")
	)
	flag.Parse()

	if *srvAddr != "" {
		if err := checkRemoteFlags(*traceOut, *metricsOut, *useCache, *real, *trace); err != nil {
			fatal(err)
		}
	}

	stopProfile, err := startProfile(*pprofOut)
	if err != nil {
		fatal(err)
	}
	defer stopProfile()
	oc := obsCfg{traceOut: *traceOut, metricsOut: *metricsOut}
	var cache *experiments.Cache
	if *useCache {
		cache = experiments.NewCache(*cacheDir)
	}

	switch {
	case *chooseK:
		prof, err := hetsim.ProfileByName(*machine)
		if err != nil {
			fatal(err)
		}
		r := *rate
		if *fit > 0 {
			// Estimate the run's duration from a clean model run, then
			// convert the device FIT rate into errors per iteration.
			base, err := core.Run(core.Options{Profile: prof, N: *n, Scheme: core.SchemeEnhanced,
				ConcurrentRecalc: true, Placement: core.PlaceAuto})
			if err != nil {
				fatal(err)
			}
			w := reliability.Workload{N: *n, B: prof.BlockSize, Seconds: base.Time}
			r = reliability.ErrorsPerIteration(reliability.FITPerMbit(*fit), w)
			fmt.Println(reliability.Describe(reliability.FITPerMbit(*fit), w))
		}
		fmt.Print(experiments.ChooseK(prof, *n, r, 20, nil))
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		for _, id := range experiments.ExtensionIDs() {
			fmt.Println(id)
		}
		fmt.Println("verify")
	case *campaignMode:
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if err := runCampaign(campaignArgs{
			machines: *campMachines, schemes: *campSchemes, classes: *campClasses,
			dir: *campDir, out: *campOut,
			trials: *campTrials, shardTrials: *campShard,
			n: *n, k: *k, vectors: *vectors, rate: *rate, delta: *delta, seed: *seed,
			set: set, server: *srvAddr, workers: *parallel,
		}); err != nil {
			fatal(err)
		}
	case *expID != "":
		sched := newSched(*srvAddr, *parallel, cache)
		if err := runExperiments(*expID, *csv, *quick, *plot, *jsonOut, oc, sched); err != nil {
			fatal(err)
		}
		warnStoreErr(sched)
	case *doRun:
		sched := newSched(*srvAddr, 1, cache)
		if err := runOne(runCfg{
			machine: *machine, n: *n, scheme: *scheme, k: *k,
			opt1: !*noOpt1, place: *place, real: *real,
			inject: *inject, delta: *delta, seed: *seed,
			trace: *trace, variant: *variant, vectors: *vectors,
		}, oc, sched); err != nil {
			fatal(err)
		}
		warnStoreErr(sched)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "abftchol:", err)
	os.Exit(1)
}

// newSched builds the execution engine: the local scheduler, or — with
// -server — a remote one whose points are resolved by a running abftd
// daemon through the reference client. Dedup, memoization, and replay
// are identical either way, so -exp output is byte-identical local vs
// remote (the daemon does its own caching and metrics accounting).
func newSched(addr string, workers int, cache *experiments.Cache) *experiments.Scheduler {
	if addr == "" {
		return experiments.NewScheduler(workers, cache)
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	cl := &server.Client{Base: strings.TrimRight(addr, "/"), Name: "abftchol"}
	return experiments.NewRemoteScheduler(workers, cl.RunPoint)
}

// checkRemoteFlags rejects flag combinations that need local
// execution: observability capture and caching belong to the daemon in
// -server mode, and real-plane inputs never leave the machine.
func checkRemoteFlags(traceOut, metricsOut string, useCache, real, trace bool) error {
	switch {
	case traceOut != "" || metricsOut != "":
		return fmt.Errorf("-trace-out/-metrics-out capture local instrumentation; with -server, fetch the daemon's /metrics or /v1/jobs/{id}/trace instead")
	case useCache:
		return fmt.Errorf("-cache is a local store; with -server, run the daemon with abftd -cache")
	case real:
		return fmt.Errorf("-real inputs stay local; remote jobs run on the timing model only")
	case trace:
		return fmt.Errorf("-trace renders a locally captured timeline; submit the job with \"trace\": true over the API instead (docs/SERVICE.md)")
	}
	return nil
}

// warnStoreErr surfaces a broken cache directory without failing the
// sweep: the results printed are unaffected, only the memoization was
// lost.
func warnStoreErr(sched *experiments.Scheduler) {
	if err := sched.StoreErr(); err != nil {
		fmt.Fprintln(os.Stderr, "abftchol: cache:", err)
	}
}

func runExperiments(id string, csv, quick, plot, jsonOut bool, oc obsCfg, sched *experiments.Scheduler) error {
	var cfg experiments.Config
	if quick {
		cfg.Sizes = []int{5120, 10240}
		cfg.CapabilityN = 10240
	}
	cfg.Obs = oc.sink()
	if id == "verify" {
		rep := sched.RunShapeChecks(cfg)
		if jsonOut {
			s, err := rep.JSON()
			if err != nil {
				return err
			}
			fmt.Print(s)
		} else {
			fmt.Print(rep)
		}
		if err := oc.flush(cfg.Obs, id); err != nil {
			return err
		}
		if !rep.Passed() {
			os.Exit(1)
		}
		return nil
	}
	reg := experiments.Registry()
	ids := experiments.IDs()
	if id == "ext" {
		ids = experiments.ExtensionIDs()
	} else if id != "all" {
		if _, ok := reg[id]; !ok {
			return fmt.Errorf("unknown experiment %q (use -list; also: ext, verify)", id)
		}
		ids = []string{id}
	}
	for _, one := range ids {
		ent := reg[one]
		out := sched.Run(ent.Run, ent.Profile, cfg)
		switch v := out.(type) {
		case *experiments.Figure:
			switch {
			case jsonOut:
				s, err := v.JSON()
				if err != nil {
					return err
				}
				fmt.Print(s)
			case csv:
				fmt.Print(v.CSV())
			case plot:
				fmt.Println(v.Plot(72, 16))
			default:
				fmt.Println(v)
			}
		case *experiments.Table:
			switch {
			case jsonOut:
				s, err := v.JSON()
				if err != nil {
					return err
				}
				fmt.Print(s)
			case csv:
				fmt.Print(v.CSV())
			default:
				fmt.Println(v)
			}
		default:
			fmt.Println(out)
		}
	}
	return oc.flush(cfg.Obs, id)
}

// The flag spellings are the service API's spellings: the parsers
// live in internal/server (shared by daemon and CLI), aliased here so
// a JobRequest over HTTP and a flag set on the command line can never
// drift apart.
var (
	parseScheme     = server.ParseScheme
	parsePlacement  = server.ParsePlacement
	parseInjections = server.ParseInjections
)

// runCfg bundles the -run mode's flags.
type runCfg struct {
	machine, scheme, place, inject, variant string
	n, k, vectors                           int
	delta                                   float64
	seed                                    int64
	opt1, real, trace                       bool
}

func runOne(c runCfg, oc obsCfg, sched *experiments.Scheduler) error {
	prof, err := hetsim.ProfileByName(c.machine)
	if err != nil {
		return err
	}
	scheme, err := parseScheme(c.scheme)
	if err != nil {
		return err
	}
	placement, err := parsePlacement(c.place)
	if err != nil {
		return err
	}
	scenarios, err := parseInjections(c.inject, c.delta)
	if err != nil {
		return err
	}
	vrt, err := server.ParseVariant(c.variant)
	if err != nil {
		return err
	}
	o := core.Options{
		Profile:          prof,
		N:                c.n,
		Scheme:           scheme,
		Variant:          vrt,
		K:                c.k,
		ChecksumVectors:  c.vectors,
		ConcurrentRecalc: c.opt1,
		Placement:        placement,
		Scenarios:        scenarios,
		Trace:            c.trace || oc.traceOut != "",
	}
	var reg *obs.Registry
	if oc.metricsOut != "" {
		reg = obs.NewRegistry()
	}
	if c.trace && c.n/prof.BlockSize > 16 {
		return fmt.Errorf("-trace is readable only for small runs; use n <= %d on this machine", 16*prof.BlockSize)
	}
	var input *mat.Matrix
	if c.real {
		if c.n > 4096 {
			return fmt.Errorf("-real is meant for small n (<= 4096); %d would take very long in pure Go", c.n)
		}
		input = mat.RandSPD(c.n, c.seed)
		o.Data = input
	}
	// A single run still goes through the scheduler so -cache applies:
	// traced runs and real-plane inputs bypass the disk cache (entries
	// carry neither a timeline nor the factor), everything else is
	// memoized by its canonical fingerprint.
	sink := &experiments.Obs{CaptureTrace: o.Trace, Metrics: reg}
	pr := sched.Execute([]core.Options{o}, sink)[0]
	if pr.Err != nil {
		return pr.Err
	}
	res := pr.Result
	fmt.Printf("machine      %s (GPU %s, block %d)\n", prof.Name, prof.GPU.Name, res.B)
	fmt.Printf("scheme       %s (%s)  K=%d  m=%d  opt1=%v  placement=%v\n",
		res.Scheme, res.Variant, res.K, c.vectors, c.opt1, res.Placement)
	fmt.Printf("matrix       %d x %d\n", res.N, res.N)
	fmt.Printf("time         %.4f s (simulated)\n", res.Time)
	fmt.Printf("performance  %.1f GFLOPS\n", res.GFLOPS)
	fmt.Printf("attempts     %d   fail-stops %d\n", res.Attempts, res.FailStop)
	fmt.Printf("verified     %d blocks, %d corrections\n", res.VerifiedBlocks, res.Corrections)
	for _, in := range res.Injections {
		fmt.Printf("injected     %s\n", in)
	}
	if input != nil && res.L != nil {
		fmt.Printf("residual     %.3g\n", mat.CholeskyResidual(input, res.L))
	}
	if c.trace && res.Trace != nil {
		fmt.Println()
		fmt.Print(res.Trace.Gantt(100))
		fmt.Println()
		fmt.Print(res.Trace.Utilization(res.Time))
	}
	if err := oc.writeMetrics(reg); err != nil {
		return err
	}
	return oc.writeTrace(res.Trace, map[string]string{
		"tool": "abftchol",
		"run":  fmt.Sprintf("%s n=%d K=%d %s", res.Scheme, res.N, res.K, res.Placement),
	})
}
