// Command abftd serves ABFT Cholesky factorizations as a service: an
// HTTP+JSON daemon accepting the same (machine, n, scheme, K, fault
// plan) points cmd/abftchol runs locally, executing them on the sweep
// engine's deduplicating scheduler, and serving results, traces, and
// metrics. See docs/SERVICE.md for the API and a worked session.
//
//	abftd                               # 127.0.0.1:8787, defaults
//	abftd -addr 127.0.0.1:0             # random port (printed on stdout)
//	abftd -cache -workers 8 -queue 128  # shared on-disk result store
//	abftd -rate 5 -burst 10             # per-client admission control
//
// The daemon drains gracefully on SIGINT/SIGTERM: submissions get
// 503, accepted jobs finish (bounded by -grace), and the final
// metrics snapshot is flushed to -metrics-out if set. cmd/abftchol
// -server <addr> is the reference client.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"abftchol/internal/experiments"
	"abftchol/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8787", "listen address; port 0 picks a free port (printed on stdout)")
		workers    = flag.Int("workers", 4, "concurrent factorizations")
		queue      = flag.Int("queue", 64, "bounded job queue depth; submissions beyond it get 429")
		jobTimeout = flag.Duration("job-timeout", 0, "per-job deadline from submission; 0 = none")
		rate       = flag.Float64("rate", 0, "per-client submissions per second; 0 = unlimited")
		burst      = flag.Int("burst", 8, "per-client token-bucket burst (-rate)")
		useCache   = flag.Bool("cache", false, "serve repeat jobs from an on-disk result store (see -cache-dir)")
		cacheDir   = flag.String("cache-dir", "artifacts/cache", "result store location used by -cache; shared with abftchol -cache")
		metricsOut = flag.String("metrics-out", "", "flush the global metrics snapshot here on shutdown")
		grace      = flag.Duration("grace", 60*time.Second, "drain deadline after SIGINT/SIGTERM; still-queued jobs are canceled past it")
	)
	flag.Parse()

	var cache *experiments.Cache
	if *useCache {
		cache = experiments.NewCache(*cacheDir)
	}
	srv, err := server.New(server.Config{
		Workers:     *workers,
		QueueDepth:  *queue,
		JobTimeout:  *jobTimeout,
		RatePerSec:  *rate,
		RateBurst:   *burst,
		Cache:       cache,
		Clock:       server.Clock{Now: time.Now, After: time.After},
		MetricsPath: *metricsOut,
	})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The one line scripts parse: the resolved address, on stdout.
	fmt.Printf("abftd: listening on http://%s\n", ln.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "abftd: %v: draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		err := srv.Shutdown(ctx)
		cancel()
		if serr := <-served; err == nil {
			err = serr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "abftd: drained")
	case err := <-served:
		if err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "abftd:", err)
	os.Exit(1)
}
