package abftchol_test

import (
	"fmt"

	"abftchol"
)

// The basic flow: factor an SPD matrix under the enhanced scheme and
// confirm the factor is exact.
func ExampleFactorSPD() {
	a := abftchol.NewSPD(128, 1)
	l, res, err := abftchol.FactorSPD(a, abftchol.Laptop(), abftchol.SchemeEnhanced)
	if err != nil {
		panic(err)
	}
	fmt.Printf("attempts: %d\n", res.Attempts)
	fmt.Printf("factor correct: %v\n", abftchol.Residual(a, l) < 1e-12)
	// Output:
	// attempts: 1
	// factor correct: true
}

// Injecting the paper's two error classes: the enhanced scheme repairs
// both in place, without redoing the factorization.
func ExampleRun_faultInjection() {
	a := abftchol.NewSPD(256, 2)
	res, err := abftchol.Run(abftchol.Options{
		Profile:          abftchol.Laptop(),
		N:                256,
		Scheme:           abftchol.SchemeEnhanced,
		ConcurrentRecalc: true,
		Data:             a,
		Scenarios: []abftchol.Scenario{
			abftchol.StorageError(4, 1e5),
			abftchol.ComputationError(6, 1e5),
		},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("errors injected: %d\n", len(res.Injections))
	fmt.Printf("corrected in place: %v (attempts=%d)\n", res.Corrections >= 2, res.Attempts)
	fmt.Printf("factor correct: %v\n", abftchol.Residual(a, res.L) < 1e-10)
	// Output:
	// errors injected: 2
	// corrected in place: true (attempts=1)
	// factor correct: true
}

// The same storage error defeats the state-of-the-art Online-ABFT: the
// run is redone from scratch (the paper's Table VII behaviour).
func ExampleRun_onlineRedo() {
	a := abftchol.NewSPD(256, 3)
	res, err := abftchol.Run(abftchol.Options{
		Profile:   abftchol.Laptop(),
		N:         256,
		Scheme:    abftchol.SchemeOnline,
		Data:      a,
		Scenarios: []abftchol.Scenario{abftchol.StorageError(4, 1e5)},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("attempts: %d\n", res.Attempts)
	fmt.Printf("factor correct anyway: %v\n", abftchol.Residual(a, res.L) < 1e-10)
	// Output:
	// attempts: 2
	// factor correct anyway: true
}

// The §V-B decision model: where should checksum updating run?
func ExampleDecideUpdatePlacement() {
	tardis := abftchol.Tardis()
	bulldozer := abftchol.Bulldozer64()
	fmt.Println("tardis:", abftchol.DecideUpdatePlacement(tardis, 20480, tardis.BlockSize, 1))
	fmt.Println("bulldozer64:", abftchol.DecideUpdatePlacement(bulldozer, 30720, bulldozer.BlockSize, 1))
	// Output:
	// tardis: cpu
	// bulldozer64: gpu
}

// Paper-scale runs use the cost-model plane: no Data, same control
// flow, simulated timing for the calibrated machine.
func ExampleRun_modelPlane() {
	res, err := abftchol.Run(abftchol.Options{
		Profile:          abftchol.Tardis(),
		N:                20480,
		Scheme:           abftchol.SchemeEnhanced,
		ConcurrentRecalc: true,
		Placement:        abftchol.PlaceAuto,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("simulated time in the paper's range: %v\n", res.Time > 10 && res.Time < 11.5)
	fmt.Printf("placement: %v\n", res.Placement)
	// Output:
	// simulated time in the paper's range: true
	// placement: cpu
}

// The closed-form overhead model of §VI.
func ExampleOverheadModel() {
	m := abftchol.OverheadModel{N: 20480, B: 256, K: 1}
	fmt.Printf("online asymptote: %.4f\n", m.OnlineAsymptotic())
	fmt.Printf("enhanced asymptote: %.4f\n", m.EnhancedAsymptotic())
	// Output:
	// online asymptote: 0.0078
	// enhanced asymptote: 0.0156
}
