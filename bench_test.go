package abftchol

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation section (§VII), regenerating the full sweep each
// iteration and reporting the headline metric the paper draws from it,
// plus micro-benchmarks of the kernels and the real-arithmetic path.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Paper-comparable metrics appear as custom benchmark units (e.g.
// enhanced-overhead-%, opt1-gain-pp).

import (
	"testing"

	"abftchol/internal/blas"
	"abftchol/internal/checksum"
	"abftchol/internal/core"
	"abftchol/internal/experiments"
	"abftchol/internal/hetsim"
	"abftchol/internal/mat"
)

// ---- Tables VII and VIII -------------------------------------------

// benchCapability regenerates a capability table and reports the
// paper's headline ratios: redo cost for the schemes that cannot
// correct in place.
func benchCapability(b *testing.B, prof hetsim.Profile) {
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.CapabilityTable(prof, experiments.Config{})
	}
	_ = tb
}

func BenchmarkTable7(b *testing.B) { benchCapability(b, hetsim.Tardis()) }
func BenchmarkTable8(b *testing.B) { benchCapability(b, hetsim.Bulldozer64()) }

// ---- Figures 8-17 --------------------------------------------------

func lastGap(f *experiments.Figure, a, bIdx int) float64 {
	last := len(f.Series[a].Points) - 1
	return f.Series[a].Points[last].Value - f.Series[bIdx].Points[last].Value
}

func BenchmarkFig8(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.Opt1Figure(hetsim.Tardis(), experiments.Config{})
	}
	b.ReportMetric(lastGap(f, 0, 1), "opt1-gain-pp")
}

func BenchmarkFig9(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.Opt1Figure(hetsim.Bulldozer64(), experiments.Config{})
	}
	b.ReportMetric(lastGap(f, 0, 1), "opt1-gain-pp")
}

func BenchmarkFig10(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.Opt2Figure(hetsim.Tardis(), experiments.Config{})
	}
	b.ReportMetric(lastGap(f, 0, 1), "opt2-gain-pp")
}

func BenchmarkFig11(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.Opt2Figure(hetsim.Bulldozer64(), experiments.Config{})
	}
	b.ReportMetric(lastGap(f, 0, 1), "opt2-gain-pp")
}

func BenchmarkFig12(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.Opt3Figure(hetsim.Tardis(), experiments.Config{})
	}
	b.ReportMetric(lastGap(f, 0, 2), "k1-vs-k5-pp")
}

func BenchmarkFig13(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.Opt3Figure(hetsim.Bulldozer64(), experiments.Config{})
	}
	b.ReportMetric(lastGap(f, 0, 2), "k1-vs-k5-pp")
}

func BenchmarkFig14(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.OverheadFigure(hetsim.Tardis(), experiments.Config{})
	}
	last := len(f.Series[2].Points) - 1
	b.ReportMetric(f.Series[2].Points[last].Value, "enhanced-overhead-%")
}

func BenchmarkFig15(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.OverheadFigure(hetsim.Bulldozer64(), experiments.Config{})
	}
	last := len(f.Series[2].Points) - 1
	b.ReportMetric(f.Series[2].Points[last].Value, "enhanced-overhead-%")
}

func BenchmarkFig16(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.PerformanceFigure(hetsim.Tardis(), experiments.Config{})
	}
	last := len(f.Series[4].Points) - 1
	b.ReportMetric(f.Series[4].Points[last].Value, "enhanced-GFLOPS")
	b.ReportMetric(f.Series[1].Points[last].Value, "cula-GFLOPS")
}

func BenchmarkFig17(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.PerformanceFigure(hetsim.Bulldozer64(), experiments.Config{})
	}
	last := len(f.Series[4].Points) - 1
	b.ReportMetric(f.Series[4].Points[last].Value, "enhanced-GFLOPS")
	b.ReportMetric(f.Series[1].Points[last].Value, "cula-GFLOPS")
}

// ---- extension experiments ------------------------------------------

func BenchmarkExtMultivec(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.MultiVectorFigure(hetsim.Tardis(), experiments.Config{Sizes: []int{5120, 10240, 20480}})
	}
	b.ReportMetric(lastGap(f, 1, 0), "m4-extra-pp")
}

func BenchmarkExtCoverage(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.CoverageStudy(hetsim.Tardis(), experiments.Config{CapabilityN: 5120})
	}
	last := len(f.Series[1].Points) - 1
	b.ReportMetric(f.Series[1].Points[last].Value, "k8-reads-per-error")
}

func BenchmarkExtVariant(b *testing.B) {
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		f = experiments.VariantFigure(hetsim.Tardis(), experiments.Config{Sizes: []int{5120, 10240}})
	}
	b.ReportMetric(lastGap(f, 3, 2), "right-extra-ovh-pp")
}

// ---- single model-plane factorizations -----------------------------

func benchModelRun(b *testing.B, prof hetsim.Profile, scheme core.Scheme, n int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		_, err := core.Run(core.Options{
			Profile: prof, N: n, Scheme: scheme,
			ConcurrentRecalc: true, Placement: core.PlaceAuto,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelMAGMATardis20480(b *testing.B) {
	benchModelRun(b, hetsim.Tardis(), core.SchemeNone, 20480)
}

func BenchmarkModelEnhancedTardis20480(b *testing.B) {
	benchModelRun(b, hetsim.Tardis(), core.SchemeEnhanced, 20480)
}

func BenchmarkModelEnhancedBulldozer30720(b *testing.B) {
	benchModelRun(b, hetsim.Bulldozer64(), core.SchemeEnhanced, 30720)
}

// ---- real-arithmetic factorizations --------------------------------

func benchRealRun(b *testing.B, scheme core.Scheme, n int) {
	b.Helper()
	a := mat.RandSPD(n, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.Run(core.Options{
			Profile: hetsim.Laptop(), N: n, Scheme: scheme,
			ConcurrentRecalc: true, Data: a,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealMAGMA512(b *testing.B)    { benchRealRun(b, core.SchemeNone, 512) }
func BenchmarkRealOnline512(b *testing.B)   { benchRealRun(b, core.SchemeOnline, 512) }
func BenchmarkRealEnhanced512(b *testing.B) { benchRealRun(b, core.SchemeEnhanced, 512) }

// ---- kernel micro-benchmarks ---------------------------------------

func BenchmarkDgemmSerial256(b *testing.B) {
	n := 256
	x := mat.RandGeneral(n, n, 1)
	y := mat.RandGeneral(n, n, 2)
	c := mat.New(n, n)
	b.SetBytes(int64(8 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blas.Dgemm(blas.NoTrans, blas.Trans, n, n, n, -1, x.Data, n, y.Data, n, 1, c.Data, n)
	}
}

func BenchmarkDgemmParallel256(b *testing.B) {
	n := 256
	x := mat.RandGeneral(n, n, 1)
	y := mat.RandGeneral(n, n, 2)
	c := mat.New(n, n)
	b.SetBytes(int64(8 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blas.DgemmParallel(blas.NoTrans, blas.Trans, n, n, n, -1, x.Data, n, y.Data, n, 1, c.Data, n)
	}
}

func BenchmarkDpotf2Block256(b *testing.B) {
	n := 256
	src := mat.RandSPD(n, 3)
	work := mat.New(n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work.CopyFrom(src)
		if err := blas.Dpotf2(n, work.Data, work.Stride); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChecksumEncodeBlock256(b *testing.B) {
	blk := mat.RandGeneral(256, 256, 4)
	chk := mat.New(2, 256)
	b.SetBytes(8 * 256 * 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checksum.EncodeBlockInto(blk, chk)
	}
}

func BenchmarkChecksumVerifyClean256(b *testing.B) {
	blk := mat.RandGeneral(256, 256, 5)
	chk := mat.New(2, 256)
	checksum.EncodeBlockInto(blk, chk)
	scratch := mat.New(2, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := checksum.VerifyAndCorrect(blk, chk, scratch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiCodeVerifyM4(b *testing.B) {
	code := checksum.NewMultiCode(4, 256)
	blk := mat.RandGeneral(256, 256, 7)
	chk := mat.New(4, 256)
	code.EncodeInto(blk, chk)
	scratch := mat.New(4, 256)
	b.SetBytes(8 * 256 * 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.VerifyAndCorrect(blk, chk, scratch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiCodeDoubleCorrect(b *testing.B) {
	code := checksum.NewMultiCode(4, 256)
	blk := mat.RandGeneral(256, 256, 8)
	chk := mat.New(4, 256)
	code.EncodeInto(blk, chk)
	scratch := mat.New(4, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk.Add(10, 50, 3)
		blk.Add(200, 50, -4)
		if _, err := code.VerifyAndCorrect(blk, chk, scratch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChecksumCorrect256(b *testing.B) {
	blk := mat.RandGeneral(256, 256, 6)
	chk := mat.New(2, 256)
	checksum.EncodeBlockInto(blk, chk)
	scratch := mat.New(2, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk.Add(13, 77, 42)
		if _, err := checksum.VerifyAndCorrect(blk, chk, scratch); err != nil {
			b.Fatal(err)
		}
	}
}
