// Package abftchol is a Go reproduction of "Online Algorithm-Based
// Fault Tolerance for Cholesky Decomposition on Heterogeneous Systems
// with GPUs" (Chen, Liang, Chen — IPDPS 2016).
//
// It provides:
//
//   - Enhanced Online-ABFT Cholesky decomposition — the paper's
//     contribution, which verifies every block immediately before it
//     is read and therefore corrects both computing errors ("1+1=3")
//     and storage errors (bit flips in resident memory) in the middle
//     of the factorization;
//   - the Offline-ABFT and Online-ABFT baselines it is compared
//     against, plus plain MAGMA-style hybrid Cholesky and a CULA-like
//     vendor baseline;
//   - the paper's three overhead optimizations: concurrent checksum
//     recalculation on GPU streams, model-driven CPU/GPU placement of
//     checksum updates, and verifying only every K-th iteration;
//   - a deterministic discrete-event simulator of the paper's two
//     evaluation machines (Tardis: Opteron 6272 + Tesla M2075/Fermi;
//     Bulldozer64: Opteron 6272 + Tesla K40c/Kepler), standing in for
//     the CUDA runtime, with real float64 arithmetic at test scale;
//   - fault injection, the closed-form overhead model of §VI, and
//     runners that regenerate every table and figure of §VII.
//
// Quick start:
//
//	a := abftchol.NewSPD(512, 1)                  // random SPD matrix
//	l, res, err := abftchol.FactorSPD(a, abftchol.Laptop(), abftchol.SchemeEnhanced)
//	// l is the Cholesky factor; res carries simulated timing and
//	// fault-tolerance accounting.
//
// The exported names are thin aliases over the implementation
// packages under internal/; see the README for the architecture.
package abftchol

import (
	"fmt"

	"abftchol/internal/cholesky"
	"abftchol/internal/core"
	"abftchol/internal/experiments"
	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
	"abftchol/internal/mat"
	"abftchol/internal/overhead"
	"abftchol/internal/reliability"
)

// Matrix is a column-major dense matrix (see NewMatrix, NewSPD).
type Matrix = mat.Matrix

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix { return mat.New(rows, cols) }

// NewSPD returns a deterministic random symmetric positive-definite
// n x n matrix for the given seed.
func NewSPD(n int, seed int64) *Matrix { return mat.RandSPD(n, seed) }

// Residual returns the scaled factorization residual
// ‖A − L·Lᵀ‖max / (n‖A‖max); values near machine epsilon mean the
// factor is correct.
func Residual(a, l *Matrix) float64 { return mat.CholeskyResidual(a, l) }

// Scheme selects the fault-tolerance variant.
type Scheme = core.Scheme

// The available schemes: plain MAGMA Algorithm 1, the CULA-like vendor
// baseline, and the three ABFT variants.
const (
	SchemeNone        = core.SchemeNone
	SchemeCULA        = core.SchemeCULA
	SchemeOffline     = core.SchemeOffline
	SchemeOnline      = core.SchemeOnline
	SchemeEnhanced    = core.SchemeEnhanced
	SchemeOnlineScrub = core.SchemeOnlineScrub
)

// Placement says where checksum updates run (Optimization 2).
type Placement = core.Placement

// Placement choices; PlaceAuto applies the paper's §V-B decision model.
const (
	PlaceAuto   = core.PlaceAuto
	PlaceGPU    = core.PlaceGPU
	PlaceCPU    = core.PlaceCPU
	PlaceInline = core.PlaceInline
)

// Options configures a factorization run; Result reports it.
type (
	Options = core.Options
	Result  = core.Result
)

// Run executes one factorization under Options (see core.Run).
func Run(o Options) (Result, error) { return core.Run(o) }

// Profile describes a simulated machine.
type Profile = hetsim.Profile

// The machines of the paper's evaluation, plus a small test profile.
func Tardis() Profile      { return hetsim.Tardis() }
func Bulldozer64() Profile { return hetsim.Bulldozer64() }
func Laptop() Profile      { return hetsim.Laptop() }

// ProfileByName resolves "tardis", "bulldozer64", or "laptop".
func ProfileByName(name string) (Profile, error) { return hetsim.ProfileByName(name) }

// Variant selects the blocked formulation: the paper's inner-product
// LeftLooking (default) or the outer-product RightLooking ablation.
type Variant = core.Variant

// The available formulations.
const (
	LeftLooking  = core.LeftLooking
	RightLooking = core.RightLooking
)

// Scenario describes a soft error to inject; Injection is one recorded
// corruption; CampaignConfig drives randomized multi-error campaigns.
type (
	Scenario       = fault.Scenario
	Injection      = fault.Injection
	CampaignConfig = fault.CampaignConfig
)

// Campaign generates a reproducible randomized storage-error campaign
// (Poisson arrivals over the factored region) for stress studies.
func Campaign(cfg CampaignConfig) []Scenario { return fault.Campaign(cfg) }

// ComputationError returns the paper's computation-error scenario
// (one wrong element in a GEMM output at the given outer iteration)
// and StorageError the storage-error scenario (a corrupted element in
// an already-verified resident block read again at that iteration).
// delta is the magnitude added to the element.
func ComputationError(iter int, delta float64) Scenario {
	s := fault.DefaultComputation(iter)
	s.Delta = delta
	return s
}

// StorageError builds the storage-error scenario; see ComputationError.
func StorageError(iter int, delta float64) Scenario {
	s := fault.DefaultStorage(iter)
	s.Delta = delta
	return s
}

// FactorSPD is the high-level entry point: it factors the SPD matrix a
// (which is not modified) on the given simulated machine under the
// given scheme with all optimizations enabled, returning the lower
// Cholesky factor. The matrix size must be a multiple of the profile's
// block size.
func FactorSPD(a *Matrix, prof Profile, scheme Scheme) (*Matrix, Result, error) {
	if a.Rows != a.Cols {
		return nil, Result{}, fmt.Errorf("abftchol: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	res, err := core.Run(Options{
		Profile:          prof,
		N:                a.Rows,
		Scheme:           scheme,
		ConcurrentRecalc: true,
		Placement:        PlaceAuto,
		Data:             a,
	})
	if err != nil {
		return nil, res, err
	}
	return res.L, res, nil
}

// Solve solves A·x = b in place given the Cholesky factor l of A.
func Solve(l *Matrix, b []float64) error { return cholesky.Solve(l, b) }

// SolveMany solves A·X = B for the columns of b in place.
func SolveMany(l, b *Matrix) error { return cholesky.SolveMany(l, b) }

// Inverse returns A⁻¹ from A's Cholesky factor.
func Inverse(l *Matrix) (*Matrix, error) { return cholesky.Inverse(l) }

// SolveRefined solves A·x = b through the factor l with iterative
// refinement against the original matrix, returning the solution and
// the final residual infinity norm.
func SolveRefined(a, l *Matrix, b []float64, maxIter int) ([]float64, float64, error) {
	return cholesky.SolveRefined(a, l, b, maxIter)
}

// ConditionEst estimates cond₂(A) from A's Cholesky factor by power
// and inverse iteration (order-of-magnitude accuracy).
func ConditionEst(l *Matrix, iters int) float64 { return cholesky.ConditionEst(l, iters) }

// LogDet returns log det A from A's Cholesky factor.
func LogDet(l *Matrix) float64 { return cholesky.LogDet(l) }

// OverheadModel exposes the closed-form overhead formulas of §VI.
type OverheadModel = overhead.Params

// Experiment types for regenerating the paper's evaluation.
type (
	ExperimentConfig = experiments.Config
	Figure           = experiments.Figure
	ExperimentTable  = experiments.Table
)

// ExperimentIDs lists the reproducible experiments: table7, table8,
// fig8 .. fig17.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one table or figure by ID and returns its
// printable result.
func RunExperiment(id string, cfg ExperimentConfig) (fmt.Stringer, error) {
	ent, ok := experiments.Registry()[id]
	if !ok {
		return nil, fmt.Errorf("abftchol: unknown experiment %q (want one of %v)", id, experiments.IDs())
	}
	return ent.Run(ent.Profile, cfg), nil
}

// FITPerMbit is a device soft-error rate (failures per 10⁹ hours per
// Mbit); ReliabilityWorkload describes one factorization for rate
// conversion. See ExpectedStorageErrors.
type (
	FITPerMbit          = reliability.FITPerMbit
	ReliabilityWorkload = reliability.Workload
)

// ExpectedStorageErrors converts a device FIT rate into the expected
// number of storage errors striking one factorization, the quantity
// that should drive the choice of Optimization 3's K (§V-C).
func ExpectedStorageErrors(rate FITPerMbit, w ReliabilityWorkload) float64 {
	return reliability.ExpectedErrors(rate, w)
}

// StorageErrorsPerIteration converts a FIT rate into the
// per-outer-iteration rate ChooseK and Campaign consume.
func StorageErrorsPerIteration(rate FITPerMbit, w ReliabilityWorkload) float64 {
	return reliability.ErrorsPerIteration(rate, w)
}

// ChooseK tunes Optimization 3's verification interval for a machine,
// matrix size, and assumed storage-error rate by running seeded
// campaigns on the cost-model plane (§V-C's guidance, made
// executable). Zero rate evaluates the fault-free overhead only.
func ChooseK(prof Profile, n int, ratePerIteration float64, trials int, candidates []int) *experiments.KChoice {
	return experiments.ChooseK(prof, n, ratePerIteration, trials, candidates)
}

// DecideUpdatePlacement applies the §V-B decision model: where should
// checksum updating run on this machine for an n x n matrix with block
// size b and verification interval k?
func DecideUpdatePlacement(prof Profile, n, b, k int) Placement {
	return core.DecideUpdatePlacement(prof, n, b, k)
}
